package minhash

import (
	"math"
	"testing"
	"testing/quick"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

func paperExample() *matrix.Matrix {
	return matrix.MustNew(4, [][]int32{
		{0, 1},
		{0, 1, 2},
		{2, 3},
	})
}

func TestComputeValidatesK(t *testing.T) {
	m := paperExample()
	for _, k := range []int{0, -1} {
		if _, err := Compute(m.Stream(), k, 1); err == nil {
			t.Errorf("Compute accepted k=%d", k)
		}
	}
}

func TestComputeDeterministic(t *testing.T) {
	m := paperExample()
	a, err := Compute(m.Stream(), 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(m.Stream(), 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			t.Fatalf("signatures differ at %d", i)
		}
	}
}

func TestComputeSeedMatters(t *testing.T) {
	m := paperExample()
	a, _ := Compute(m.Stream(), 8, 1)
	b, _ := Compute(m.Stream(), 8, 2)
	same := 0
	for i := range a.Vals {
		if a.Vals[i] == b.Vals[i] {
			same++
		}
	}
	if same == len(a.Vals) {
		t.Fatal("different seeds produced identical signatures")
	}
}

// TestMinHashIsColumnMinimum verifies the defining property directly:
// the signature equals the minimum row-hash over the column's rows.
func TestMinHashIsColumnMinimum(t *testing.T) {
	m := paperExample()
	const k, seed = 5, 77
	sig, err := Compute(m.Stream(), k, seed)
	if err != nil {
		t.Fatal(err)
	}
	hs := hashing.NewPermHashes(seed, k)
	for c := 0; c < m.NumCols(); c++ {
		for l := 0; l < k; l++ {
			want := Empty
			for _, r := range m.Column(c) {
				if h := hs[l].Row(int(r)); h < want {
					want = h
				}
			}
			if got := sig.Value(l, c); got != want {
				t.Errorf("sig[%d][%d] = %x, want %x", l, c, got, want)
			}
		}
	}
}

func TestEmptyColumnSentinel(t *testing.T) {
	m := matrix.MustNew(3, [][]int32{{}, {0, 1, 2}, {}})
	sig, err := Compute(m.Stream(), 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 4; l++ {
		if sig.Value(l, 0) != Empty {
			t.Errorf("empty column has non-sentinel value at row %d", l)
		}
	}
	// Two empty columns must estimate similarity 0, not 1.
	if got := sig.Estimate(0, 2); got != 0 {
		t.Errorf("Estimate(empty, empty) = %v, want 0", got)
	}
	if got := sig.Estimate(0, 1); got != 0 {
		t.Errorf("Estimate(empty, full) = %v, want 0", got)
	}
}

// TestProposition1 checks Prob[h(ci)=h(cj)] = S(ci,cj) statistically:
// with many independent hash functions the agreement fraction must
// approach the true Jaccard similarity.
func TestProposition1(t *testing.T) {
	m := paperExample()
	const k = 20000
	sig, err := Compute(m.Stream(), k, 123)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ i, j int }{{0, 1}, {0, 2}, {1, 2}}
	for _, c := range cases {
		want := m.Similarity(c.i, c.j)
		got := sig.Estimate(c.i, c.j)
		// 4-sigma tolerance for a binomial proportion.
		tol := 4 * math.Sqrt(want*(1-want)/k)
		if tol < 0.01 {
			tol = 0.01
		}
		if math.Abs(got-want) > tol {
			t.Errorf("Estimate(%d,%d) = %v, want %v ± %v", c.i, c.j, got, want, tol)
		}
	}
}

func TestEstimateIdenticalColumns(t *testing.T) {
	m := matrix.MustNew(6, [][]int32{
		{0, 2, 4},
		{0, 2, 4},
	})
	sig, _ := Compute(m.Stream(), 16, 5)
	if got := sig.Estimate(0, 1); got != 1 {
		t.Errorf("identical columns estimate = %v, want 1", got)
	}
}

func TestEstimateDisjointColumns(t *testing.T) {
	m := matrix.MustNew(6, [][]int32{
		{0, 1, 2},
		{3, 4, 5},
	})
	sig, _ := Compute(m.Stream(), 64, 5)
	if got := sig.Estimate(0, 1); got != 0 {
		t.Errorf("disjoint columns estimate = %v, want 0", got)
	}
}

func TestColumnAccessor(t *testing.T) {
	m := paperExample()
	sig, _ := Compute(m.Stream(), 6, 8)
	col := sig.Column(1, nil)
	if len(col) != 6 {
		t.Fatalf("Column length %d, want 6", len(col))
	}
	for l, v := range col {
		if v != sig.Value(l, 1) {
			t.Errorf("Column[%d] = %x, want %x", l, v, sig.Value(l, 1))
		}
	}
	// Reuse path.
	dst := make([]uint64, 6)
	if got := sig.Column(2, dst); &got[0] != &dst[0] {
		t.Error("Column did not reuse dst")
	}
}

// TestOrColumnMatchesInducedColumn: the OR signature must equal the
// signature of the materialised induced column c_i ∨ c_j.
func TestOrColumnMatchesInducedColumn(t *testing.T) {
	rng := hashing.NewSplitMix64(99)
	b := matrix.NewBuilder(50, 3)
	for c := 0; c < 2; c++ {
		for r := 0; r < 50; r++ {
			if rng.Float64() < 0.15 {
				b.Set(r, c)
			}
		}
	}
	m := b.Build()
	m2, orIdx := m.WithOrColumn(0, 1)
	const k, seed = 12, 314
	sig, err := Compute(m2.Stream(), k, seed)
	if err != nil {
		t.Fatal(err)
	}
	or := sig.OrColumn(0, 1, nil)
	for l := 0; l < k; l++ {
		if or[l] != sig.Value(l, orIdx) {
			t.Errorf("OR signature row %d = %x, want %x", l, or[l], sig.Value(l, orIdx))
		}
	}
}

// TestLessOrEqualFraction checks the Section 6 estimator of
// |C_i| / |C_i ∪ C_j| statistically.
func TestLessOrEqualFraction(t *testing.T) {
	m := paperExample()
	const k = 20000
	sig, _ := Compute(m.Stream(), k, 2024)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			want := float64(m.ColumnSize(i)) / float64(m.UnionSize(i, j))
			got := sig.LessOrEqualFraction(i, j)
			if math.Abs(got-want) > 0.02 {
				t.Errorf("LessOrEqualFraction(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSampleSize(t *testing.T) {
	k, err := SampleSize(0.1, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(2 / (0.01 * 0.5) * math.Log(100)))
	if k != want {
		t.Errorf("SampleSize = %d, want %d", k, want)
	}
	// Monotonicity: smaller delta needs more samples.
	k2, _ := SampleSize(0.05, 0.01, 0.5)
	if k2 <= k {
		t.Errorf("smaller delta gave k=%d <= %d", k2, k)
	}
	for _, bad := range [][3]float64{
		{0, 0.1, 0.5}, {1, 0.1, 0.5}, {0.1, 0, 0.5}, {0.1, 1, 0.5}, {0.1, 0.1, 0}, {0.1, 0.1, 1.5},
	} {
		if _, err := SampleSize(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("SampleSize accepted %v", bad)
		}
	}
}

// TestTheorem1Concentration: over many random pairs, pairs with true
// similarity >= s* rarely fall below (1-δ)s* agreement when k meets the
// Theorem 1 bound.
func TestTheorem1Concentration(t *testing.T) {
	const delta, eps, cutoff = 0.5, 0.05, 0.3
	k, err := SampleSize(delta, eps, cutoff)
	if err != nil {
		t.Fatal(err)
	}
	rng := hashing.NewSplitMix64(55)
	b := matrix.NewBuilder(400, 40)
	// Pairs of columns sharing most rows: similarity well above cutoff.
	for c := 0; c < 40; c += 2 {
		for r := 0; r < 400; r++ {
			if rng.Float64() < 0.1 {
				b.Set(r, c)
				b.Set(r, c+1)
			} else if rng.Float64() < 0.01 {
				b.Set(r, c)
			}
		}
	}
	m := b.Build()
	sig, err := Compute(m.Stream(), k, 77)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	pairsChecked := 0
	for c := 0; c < 40; c += 2 {
		s := m.Similarity(c, c+1)
		if s < cutoff {
			continue
		}
		pairsChecked++
		if sig.Estimate(c, c+1) < (1-delta)*s {
			misses++
		}
	}
	if pairsChecked == 0 {
		t.Fatal("fixture produced no high-similarity pairs")
	}
	// Expected miss rate <= eps; allow generous slack for 20 trials.
	if float64(misses) > math.Max(2, 3*eps*float64(pairsChecked)) {
		t.Errorf("%d/%d pairs fell below (1-δ)s", misses, pairsChecked)
	}
}

func TestQuickAgreementSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		b := matrix.NewBuilder(30, 6)
		for c := 0; c < 6; c++ {
			for r := 0; r < 30; r++ {
				if rng.Float64() < 0.2 {
					b.Set(r, c)
				}
			}
		}
		sig, err := Compute(b.Build().Stream(), 10, seed^0xabcdef)
		if err != nil {
			return false
		}
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				if sig.Agreement(i, j) != sig.Agreement(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEstimateBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		b := matrix.NewBuilder(20, 5)
		for c := 0; c < 5; c++ {
			for r := 0; r < 20; r++ {
				if rng.Float64() < 0.3 {
					b.Set(r, c)
				}
			}
		}
		sig, err := Compute(b.Build().Stream(), 7, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				e := sig.Estimate(i, j)
				if e < 0 || e > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
