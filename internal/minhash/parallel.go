package minhash

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/obs"
)

// ComputeParallel computes the same signatures as Compute — bit for bit
// — using the column-major matrix directly and sharding columns across
// workers. Row hashes depend only on (seed, row), so the minimum over a
// column's rows is identical however the work is split.
//
// It requires the materialised matrix (streaming sources cannot be
// range-partitioned); pass workers <= 0 for GOMAXPROCS.
func ComputeParallel(m *matrix.Matrix, k int, seed uint64, workers int) (*Signatures, error) {
	return ComputeParallelProgress(m, k, seed, workers, nil)
}

// progressStride is how many columns a worker signs between progress
// ticks; coarse enough that the atomic add never shows up in profiles.
const progressStride = 64

// ComputeParallelProgress is ComputeParallel with a progress hook: tick
// (when non-nil) receives (columns signed, total columns), invoked from
// worker goroutines every progressStride columns. The signatures are
// unaffected by the hook.
func ComputeParallelProgress(m *matrix.Matrix, k int, seed uint64, workers int, tick obs.Tick) (*Signatures, error) {
	if k <= 0 {
		return nil, fmt.Errorf("minhash: k must be positive, got %d", k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cols := m.NumCols()
	sig := &Signatures{K: k, M: cols, Vals: make([]uint64, k*cols)}
	for i := range sig.Vals {
		sig.Vals[i] = Empty
	}
	hs := hashing.NewPermHashes(seed, k)

	var wg sync.WaitGroup
	var done atomic.Int64
	chunk := (cols + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > cols {
			hi = cols
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Per-worker scratch of row hashes is unnecessary: each
			// (l, row) hash is recomputed per column. For very dense
			// columns this recomputation is the price of the
			// column-parallel strategy; the row-driven Compute
			// amortises it instead.
			for c := lo; c < hi; c++ {
				col := m.Column(c)
				for l := 0; l < k; l++ {
					minVal := Empty
					h := hs[l]
					for _, r := range col {
						if v := h.Row(int(r)); v < minVal {
							minVal = v
						}
					}
					sig.Vals[l*cols+c] = minVal
				}
				if tick != nil && (c-lo+1)%progressStride == 0 {
					tick(done.Add(progressStride), int64(cols))
				}
			}
			if tick != nil {
				if rem := int64((hi - lo) % progressStride); rem > 0 {
					tick(done.Add(rem), int64(cols))
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return sig, nil
}
