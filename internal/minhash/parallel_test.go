package minhash

import (
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

func TestComputeParallelMatchesSerial(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	b := matrix.NewBuilder(500, 60)
	for c := 0; c < 60; c++ {
		for r := 0; r < 500; r++ {
			if rng.Float64() < 0.08 {
				b.Set(r, c)
			}
		}
	}
	m := b.Build()
	const k, seed = 16, 99
	serial, err := Compute(m.Stream(), k, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 13, 0} {
		par, err := ComputeParallel(m, k, seed, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.K != serial.K || par.M != serial.M {
			t.Fatalf("workers=%d: dims differ", workers)
		}
		for i := range serial.Vals {
			if serial.Vals[i] != par.Vals[i] {
				t.Fatalf("workers=%d: value %d differs: %x vs %x",
					workers, i, serial.Vals[i], par.Vals[i])
			}
		}
	}
}

func TestComputeParallelValidates(t *testing.T) {
	m := matrix.MustNew(2, [][]int32{{0}})
	if _, err := ComputeParallel(m, 0, 1, 2); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestComputeParallelEmptyMatrix(t *testing.T) {
	m := matrix.MustNew(0, [][]int32{{}, {}})
	sig, err := ComputeParallel(m, 4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sig.Vals {
		if v != Empty {
			t.Fatal("empty matrix produced non-sentinel values")
		}
	}
}

func TestComputeParallelMoreWorkersThanColumns(t *testing.T) {
	m := matrix.MustNew(4, [][]int32{{0, 2}, {1}})
	serial, _ := Compute(m.Stream(), 8, 7)
	par, err := ComputeParallel(m, 8, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Vals {
		if serial.Vals[i] != par.Vals[i] {
			t.Fatal("mismatch with workers > columns")
		}
	}
}
