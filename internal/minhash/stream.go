package minhash

import (
	"fmt"
	"runtime"

	"assocmine/internal/matrix"
)

// ComputeStream computes the same signatures as Compute — bit for bit —
// in ONE sequential pass over src without materialising the matrix. The
// driver is merge-based: shards are dealt round-robin to workers
// (matrix.DistributeShards), each worker folds its disjoint row subset
// into a private FoldState, and the states are merged in fixed worker
// order at the end. The per-cell minimum over a union of rows is the
// minimum of the per-part minima, so any worker count and any row
// partition yield the serial result exactly. Memory is O(workers·k·m)
// for the states plus a constant number of in-flight shards.
//
// Returns the signatures and the number of shards streamed. workers <=
// 0 means GOMAXPROCS; one worker folds shard-by-shard directly (the
// degenerate deal), which keeps accounting uniform.
func ComputeStream(src matrix.RowSource, k int, seed uint64, workers int) (*Signatures, int64, error) {
	st, err := NewFoldState(src.NumCols(), k, seed)
	if err != nil {
		return nil, 0, err
	}
	shards, err := FoldStream(src, st, workers)
	if err != nil {
		return nil, shards, err
	}
	return st.Finish(), shards, nil
}

// FoldStream folds every row of src into st using workers parallel
// consumers over one sequential pass, returning the number of shards
// streamed. st may already hold previously folded rows (the resume
// path); the new rows are combined in by Merge, so the result is
// exactly the state of folding all rows, old and new. With one worker
// the rows are folded directly into st in scan order.
func FoldStream(src matrix.RowSource, st *FoldState, workers int) (int64, error) {
	if src.NumCols() != st.m {
		return 0, fmt.Errorf("minhash: source has %d columns, fold state has %d", src.NumCols(), st.m)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return matrix.ScanShards(src, 0, 0, func(sh *matrix.Shard) error {
			st.FoldShard(sh)
			return nil
		})
	}
	parts := make([]*FoldState, workers)
	consumers := make([]func(<-chan *matrix.Shard), workers)
	for w := range parts {
		p := newFoldState(st.m, st.k, st.seed, st.hs)
		parts[w] = p
		consumers[w] = func(ch <-chan *matrix.Shard) {
			for sh := range ch {
				p.FoldShard(sh)
			}
		}
	}
	shards, err := matrix.DistributeShards(src, 0, 0, consumers)
	if err != nil {
		return shards, err
	}
	for _, p := range parts {
		if err := Merge(st, p); err != nil {
			return shards, err
		}
	}
	return shards, nil
}
