package minhash

import (
	"fmt"
	"runtime"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// ComputeStream computes the same signatures as Compute — bit for bit —
// in ONE sequential pass over src, folding each row into the signature
// matrix incrementally, with the work fanned out across workers. Unlike
// ComputeParallel it never needs the materialised matrix: a single
// reader streams bounded shards (matrix.FanOutShards) and each worker
// owns a contiguous range of hash indices, writing a disjoint region of
// the k×m value array. The minimum over a column's rows is independent
// of how the hash indices are split, so any worker count yields the
// serial result exactly. Memory stays O(k·m) for the signatures plus a
// constant number of in-flight shards.
//
// Returns the signatures and the number of shards streamed. workers <=
// 0 means GOMAXPROCS; one worker still streams shard-by-shard (the
// degenerate fan-out), which keeps accounting uniform.
func ComputeStream(src matrix.RowSource, k int, seed uint64, workers int) (*Signatures, int64, error) {
	if k <= 0 {
		return nil, 0, fmt.Errorf("minhash: k must be positive, got %d", k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	m := src.NumCols()
	sig := &Signatures{K: k, M: m, Vals: make([]uint64, k*m)}
	hs := hashing.NewPermHashes(seed, k)

	// Contiguous hash-index ranges: worker w folds rows into a private
	// column-major scratch (its columns' running minima contiguous, as
	// in Compute) and transposes into Vals[lLo*m : lHi*m) once its
	// stream drains, so writes never overlap.
	chunk := (k + workers - 1) / workers
	consumers := make([]func(<-chan *matrix.Shard), 0, workers)
	for lLo := 0; lLo < k; lLo += chunk {
		lHi := lLo + chunk
		if lHi > k {
			lHi = k
		}
		lLo := lLo
		consumers = append(consumers, func(ch <-chan *matrix.Shard) {
			kw := lHi - lLo
			work := make([]uint64, m*kw) // column-major: work[c*kw+(l-lLo)]
			for i := range work {
				work[i] = Empty
			}
			rowVals := make([]uint64, kw)
			for sh := range ch {
				for i := 0; i < sh.Len(); i++ {
					row, cols := sh.Row(i)
					if len(cols) == 0 {
						continue
					}
					for l := lLo; l < lHi; l++ {
						rowVals[l-lLo] = hs[l].Row(int(row))
					}
					for _, c := range cols {
						foldMin(work[int(c)*kw:int(c)*kw+kw], rowVals)
					}
				}
			}
			for c := 0; c < m; c++ {
				for j, v := range work[c*kw : (c+1)*kw] {
					sig.Vals[(lLo+j)*m+c] = v
				}
			}
		})
	}
	shards, err := matrix.FanOutShards(src, 0, 0, consumers)
	if err != nil {
		return nil, shards, err
	}
	return sig, shards, nil
}
