package minhash

import (
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/testutil"
)

func streamFixture(rows, cols int, seed uint64) *matrix.SliceSource {
	rng := hashing.NewSplitMix64(seed)
	out := make([][]int32, rows)
	for r := range out {
		var row []int32
		for c := 0; c < cols; c++ {
			if rng.Intn(4) == 0 {
				row = append(row, int32(c))
			}
		}
		out[r] = row
	}
	return &matrix.SliceSource{Cols: cols, Rows: out}
}

// TestComputeStreamBitIdentical: the merge-based streamed driver must
// reproduce the serial signatures exactly for any worker count,
// including worker counts above k (pointwise min is
// partition-independent).
func TestComputeStreamBitIdentical(t *testing.T) {
	testutil.CheckGoroutines(t)
	src := streamFixture(700, 60, 11)
	const k = 24
	want, err := Compute(src, k, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, k + 7} {
		got, shards, err := ComputeStream(src, k, 5, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if shards <= 0 {
			t.Errorf("workers=%d: %d shards streamed", workers, shards)
		}
		if got.K != want.K || got.M != want.M {
			t.Fatalf("workers=%d: shape %dx%d, want %dx%d", workers, got.K, got.M, want.K, want.M)
		}
		for i := range want.Vals {
			if got.Vals[i] != want.Vals[i] {
				t.Fatalf("workers=%d: Vals[%d] = %d, want %d", workers, i, got.Vals[i], want.Vals[i])
			}
		}
	}
}

// TestComputeStreamEmptyColumns: untouched columns keep the sentinel.
func TestComputeStreamEmptyColumns(t *testing.T) {
	src := &matrix.SliceSource{Cols: 5, Rows: [][]int32{{0, 2}, {0}, {}}}
	sig, _, err := ComputeStream(src, 8, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < sig.K; l++ {
		for _, c := range []int{1, 3, 4} {
			if sig.Value(l, c) != Empty {
				t.Fatalf("empty column %d has value at hash %d", c, l)
			}
		}
	}
}

// TestComputeStreamMoreWorkersThanShards: a tiny source fits one shard,
// so most consumers drain empty channels and contribute empty states to
// the merge — the result must still match the serial signatures.
func TestComputeStreamMoreWorkersThanShards(t *testing.T) {
	testutil.CheckGoroutines(t)
	src := streamFixture(9, 12, 3)
	const k = 6
	want, err := Compute(src, k, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, shards, err := ComputeStream(src, k, 7, 16)
	if err != nil {
		t.Fatal(err)
	}
	if shards != 1 {
		t.Fatalf("streamed %d shards, want 1", shards)
	}
	for i := range want.Vals {
		if got.Vals[i] != want.Vals[i] {
			t.Fatalf("Vals[%d] = %d, want %d", i, got.Vals[i], want.Vals[i])
		}
	}
}

// TestComputeStreamZeroRows: a 0-row source streams zero shards and
// yields all-sentinel signatures, for any worker count.
func TestComputeStreamZeroRows(t *testing.T) {
	testutil.CheckGoroutines(t)
	src := &matrix.SliceSource{Cols: 6, Rows: nil}
	for _, workers := range []int{1, 4} {
		sig, shards, err := ComputeStream(src, 5, 11, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if shards != 0 {
			t.Errorf("workers=%d: streamed %d shards, want 0", workers, shards)
		}
		for i, v := range sig.Vals {
			if v != Empty {
				t.Fatalf("workers=%d: Vals[%d] = %d, want sentinel", workers, i, v)
			}
		}
	}
}

func TestComputeStreamBadK(t *testing.T) {
	if _, _, err := ComputeStream(streamFixture(5, 5, 1), 0, 1, 2); err == nil {
		t.Error("k=0 accepted")
	}
}
