package obs

import (
	"sync"
	"time"
)

// PhaseSpan aggregates the spans recorded for one phase: how many times
// the phase ran and the total wall-clock spent in it.
type PhaseSpan struct {
	Count int64
	Total time.Duration
}

// Snapshot is a point-in-time copy of a Collector's state.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Spans    map[string]PhaseSpan
	// CurrentPhase is the most recently started, not yet ended phase
	// ("" when idle).
	CurrentPhase string
}

// Collector is a thread-safe in-memory Recorder. A zero Collector is
// not usable; construct with NewCollector. One Collector may observe
// many runs (counters and spans accumulate); Reset starts it over.
type Collector struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
	spans    map[string]PhaseSpan
	current  string
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		spans:    make(map[string]PhaseSpan),
	}
}

// PhaseStart implements Recorder.
func (c *Collector) PhaseStart(phase string) {
	c.mu.Lock()
	c.current = phase
	c.mu.Unlock()
}

// PhaseEnd implements Recorder.
func (c *Collector) PhaseEnd(phase string, d time.Duration) {
	c.mu.Lock()
	sp := c.spans[phase]
	sp.Count++
	sp.Total += d
	c.spans[phase] = sp
	if c.current == phase {
		c.current = ""
	}
	c.mu.Unlock()
}

// Add implements Recorder.
func (c *Collector) Add(counter string, n int64) {
	c.mu.Lock()
	c.counters[counter] += n
	c.mu.Unlock()
}

// SetGauge implements Recorder.
func (c *Collector) SetGauge(gauge string, v int64) {
	c.mu.Lock()
	c.gauges[gauge] = v
	c.mu.Unlock()
}

// Counter returns the current value of a counter (0 if never added).
func (c *Collector) Counter(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// Gauge returns the last value set for a gauge (0 if never set).
func (c *Collector) Gauge(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gauges[name]
}

// Span returns the aggregated span for a phase.
func (c *Collector) Span(phase string) PhaseSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spans[phase]
}

// Snapshot returns a copy of all recorded state.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Counters:     make(map[string]int64, len(c.counters)),
		Gauges:       make(map[string]int64, len(c.gauges)),
		Spans:        make(map[string]PhaseSpan, len(c.spans)),
		CurrentPhase: c.current,
	}
	for k, v := range c.counters {
		s.Counters[k] = v
	}
	for k, v := range c.gauges {
		s.Gauges[k] = v
	}
	for k, v := range c.spans {
		s.Spans[k] = v
	}
	return s
}

// Reset clears all recorded state.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.counters = make(map[string]int64)
	c.gauges = make(map[string]int64)
	c.spans = make(map[string]PhaseSpan)
	c.current = ""
	c.mu.Unlock()
}
