package obs

import (
	"expvar"
	"sync"
)

// ExpvarFunc returns an expvar.Func whose value is the collector's
// Snapshot, so the full counter/gauge/span state appears as one JSON
// object under /debug/vars.
func (c *Collector) ExpvarFunc() expvar.Func {
	return expvar.Func(func() any { return c.Snapshot() })
}

var (
	publishMu sync.Mutex
	published = map[string]bool{}
)

// Publish registers the collector under name in the process-wide expvar
// registry. Unlike expvar.Publish it is idempotent: re-publishing a
// name rebinds it to c instead of panicking, so CLIs and tests can call
// it unconditionally.
func Publish(name string, c *Collector) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		// expvar has no unpublish; rebind through an indirection-free
		// re-registration is impossible, so keep a forwarding layer.
		rebind(name, c)
		return
	}
	published[name] = true
	targets[name] = c
	expvar.Publish(name, expvar.Func(func() any { return lookup(name).Snapshot() }))
}

var targets = map[string]*Collector{}

func rebind(name string, c *Collector) { targets[name] = c }

func lookup(name string) *Collector {
	publishMu.Lock()
	defer publishMu.Unlock()
	return targets[name]
}
