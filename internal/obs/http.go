package obs

import (
	"fmt"
	"net/http"
)

// RegisterHTTP registers the standard observability endpoints for c on
// mux: /metrics in the Prometheus text exposition format and
// /debug/vars serving the collector's snapshot as JSON under name (the
// same name the collector is published under in the process-wide
// expvar registry). It is the single place the HTTP export wiring
// lives — the assocfind -metrics-addr listener and the resident query
// server both register through it.
func RegisterHTTP(mux *http.ServeMux, name string, c *Collector) {
	Publish(name, c)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = c.WriteTo(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{%q: %s}\n", name, c.ExpvarFunc().String())
	})
}
