// Package obs is the pipeline observability substrate: a Recorder
// interface receiving per-phase spans, counters and gauges from the
// three-phase template (signatures → candidates → verification), a
// no-op implementation that costs nothing when observability is off,
// and an in-memory Collector with expvar and Prometheus-text export.
//
// The quantities recorded are exactly the ones the paper's analysis is
// stated in: rows scanned per pass (the I/O currency of the
// disk-resident setting), signature cells built (the O(m·k) memory
// term), candidate counter increments (the O(k·S̄·m²) running-time
// term), candidates emitted, pairs verified, and the false positives
// the exact pass prunes.
package obs

import "time"

// Phase names. One span is recorded per executed phase per run.
const (
	// PhaseSignatures is phase 1: the streaming signature pass.
	PhaseSignatures = "signatures"
	// PhaseCandidates is phase 2: in-memory candidate generation.
	// Brute-force and a-priori runs, which have no separate signature
	// or verification pass, account their whole counting pass here.
	PhaseCandidates = "candidates"
	// PhaseVerify is phase 3: the exact pruning pass over the data.
	PhaseVerify = "verify"
)

// Counter names. Counters only ever increase within a run.
const (
	// CounterRowsScanned totals rows delivered across all data passes.
	CounterRowsScanned = "rows_scanned"
	// CounterDataPasses counts sequential scans of the data.
	CounterDataPasses = "data_passes"
	// CounterSignatureCells counts signature values computed in phase 1
	// (k·m for MH/M-LSH, Σ|SIG_i| for bottom-k sketches) — |SIG| in the
	// paper's memory analysis.
	CounterSignatureCells = "signature_cells"
	// CounterIncrements counts phase-2 counter-array increments, the
	// O(k·S̄·m²) term of the Section 3.1 running-time analysis.
	CounterIncrements = "counter_increments"
	// CounterBucketPairs counts LSH bucket pair-additions attempted
	// (including cross-band duplicates).
	CounterBucketPairs = "bucket_pairs"
	// CounterCandidates counts candidate pairs entering verification.
	CounterCandidates = "candidates"
	// CounterVerifyTouches counts per-row pair-counter updates in the
	// verification scan.
	CounterVerifyTouches = "verify_touches"
	// CounterPairsVerified counts pairs surviving exact verification.
	CounterPairsVerified = "pairs_verified"
	// CounterFalsePositives counts candidates eliminated by the exact
	// pass (candidates - verified).
	CounterFalsePositives = "false_positives"
	// CounterTopPairsAttempts counts threshold-lowering retries of a
	// TopPairs query.
	CounterTopPairsAttempts = "toppairs_attempts"
	// CounterBytesRead totals file bytes read across all data passes
	// (absent for in-memory sources, which read no files).
	CounterBytesRead = "bytes_read"
	// CounterShards counts the bounded row blocks the streamed fan-out
	// strategies broadcast to workers.
	CounterShards = "shards_streamed"
	// CounterSpillRuns and CounterSpillBytes report the sorted runs the
	// budgeted verification pass spilled to disk when its counter table
	// exceeded Config.MemoryBudget.
	CounterSpillRuns  = "spill_runs"
	CounterSpillBytes = "spill_bytes"
	// CounterCompressedBytesRead totals the on-disk bytes delivered by
	// compressed-format sources (".carows"), the compressed share of
	// CounterBytesRead. CounterSpillBytesCompressed totals the spill-run
	// bytes written under the compressed spill codec, the compressed
	// share of CounterSpillBytes.
	CounterCompressedBytesRead  = "compressed_bytes_read"
	CounterSpillBytesCompressed = "spill_bytes_compressed"
	// CounterIORetries counts transient IO errors the file-backed
	// source retried away (absent on healthy disks and in-memory runs).
	CounterIORetries = "io_retries"
	// CounterFaultsInjected counts faults a fault-injecting FS (see
	// internal/faultfs) delivered into the run's reads — nonzero only
	// under chaos harnesses, never in production.
	CounterFaultsInjected = "faults_injected"
	// CounterPackedWords counts the uint64 AND/OR word operations of the
	// packed verification kernel and CounterPackedBatches the candidate
	// batches its bit-column arena was rebuilt for (both absent on the
	// scalar kernel).
	CounterPackedWords   = "packed_words"
	CounterPackedBatches = "packed_batches"
	// CounterPairsSampled counts the in-row pair draws the BPS sampler
	// inspected (Σ b·(b-1)/2 over basket sizes b — the scheme's
	// candidate-phase work measure, playing the role CounterIncrements
	// plays for the counting schemes). CounterSampleAccepts counts the
	// draws the biased acceptance test kept, and CounterSampleDups the
	// accepted draws for pairs that had already been sampled (accepts
	// minus distinct sampled pairs — the dedup work the exact merge
	// performs). All three are absent for the other schemes.
	CounterPairsSampled  = "pairs_sampled"
	CounterSampleAccepts = "sample_accepts"
	CounterSampleDups    = "sample_dups"
	// CounterRowsAppended counts rows folded into an incremental Ingest
	// (appended batches and catch-up scans), CounterStatesMerged the
	// fold-state merges performed to answer queries or combine window
	// checkpoints, and CounterWindowsExpired the per-window checkpoints
	// dropped by sliding-window expiry. All three are absent in batch
	// runs.
	CounterRowsAppended   = "rows_appended"
	CounterStatesMerged   = "states_merged"
	CounterWindowsExpired = "windows_expired"
	// CounterDistWorkers counts worker subprocesses launched by the
	// scale-out coordinator (including replacements after a crash),
	// CounterDistBytesShipped the protocol payload bytes moved over the
	// coordinator/worker pipes in both directions, and CounterDistRestarts
	// the failed row/column ranges that were re-dispatched to a fresh
	// worker. All three are absent in single-process runs.
	CounterDistWorkers      = "dist_workers"
	CounterDistBytesShipped = "dist_bytes_shipped"
	CounterDistRestarts     = "dist_restarts"
)

// Gauge names. Gauges record the last value set.
const (
	// GaugeSignatureWorkers..GaugeVerifyWorkers record the worker
	// budget each phase ran under.
	GaugeSignatureWorkers = "signature_workers"
	GaugeCandidateWorkers = "candidate_workers"
	GaugeVerifyWorkers    = "verify_workers"
	// GaugeSignatureBytes approximates the resident memory of the
	// signature structures ("main memory" in the paper's model).
	GaugeSignatureBytes = "signature_bytes"
	// GaugeCodecRatio records the run's overall compression ratio —
	// uncompressed-equivalent bytes over bytes actually moved, across
	// compressed file reads and spill writes — as a fixed-point
	// percentage (ratio x 100, so 330 means 3.3x). Unset when the run
	// moved no compressed bytes.
	GaugeCodecRatio = "codec_ratio"
)

// Recorder receives observability events from a pipeline run. All
// methods may be called from multiple goroutines. Implementations must
// not block: they sit between pipeline phases and, for counters, at
// shard boundaries of the parallel paths.
type Recorder interface {
	// PhaseStart marks the beginning of a phase.
	PhaseStart(phase string)
	// PhaseEnd marks the end of a phase with its measured duration.
	// Every PhaseStart is followed by exactly one PhaseEnd.
	PhaseEnd(phase string, d time.Duration)
	// Add increments a named counter by n (n >= 0).
	Add(counter string, n int64)
	// SetGauge records the current value of a named gauge.
	SetGauge(gauge string, v int64)
}

// Tick reports progress within one phase: done units finished out of
// total. The unit is phase-specific (rows for data scans, columns or
// bands for candidate generation, candidate pairs for sharded
// verification). Ticks may arrive concurrently and out of order from
// worker goroutines; consumers that need monotonicity must enforce it.
type Tick func(done, total int64)

// ProgressFunc is the user-facing progress callback: phase names the
// pipeline phase, done/total follow Tick semantics. The pipeline
// serialises calls and drops out-of-order updates, so done is
// non-decreasing within a phase and reaches total when the phase
// completes.
type ProgressFunc func(phase string, done, total int64)

// nopRecorder is the zero-cost default. Methods are value receivers on
// an empty struct so calls through the interface never allocate.
type nopRecorder struct{}

func (nopRecorder) PhaseStart(string)              {}
func (nopRecorder) PhaseEnd(string, time.Duration) {}
func (nopRecorder) Add(string, int64)              {}
func (nopRecorder) SetGauge(string, int64)         {}

// Nop returns the no-op Recorder.
func Nop() Recorder { return nopRecorder{} }

// OrNop returns r, or the no-op recorder when r is nil.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return nopRecorder{}
	}
	return r
}

// tee duplicates events to two recorders.
type tee struct{ a, b Recorder }

func (t tee) PhaseStart(phase string)                { t.a.PhaseStart(phase); t.b.PhaseStart(phase) }
func (t tee) PhaseEnd(phase string, d time.Duration) { t.a.PhaseEnd(phase, d); t.b.PhaseEnd(phase, d) }
func (t tee) Add(counter string, n int64)            { t.a.Add(counter, n); t.b.Add(counter, n) }
func (t tee) SetGauge(gauge string, v int64)         { t.a.SetGauge(gauge, v); t.b.SetGauge(gauge, v) }

// Tee returns a Recorder forwarding every event to both a and b. Nil
// arguments are replaced by the no-op recorder.
func Tee(a, b Recorder) Recorder {
	if a == nil {
		return OrNop(b)
	}
	if b == nil {
		return a
	}
	return tee{a: a, b: b}
}
