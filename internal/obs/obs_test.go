package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollectorBasics(t *testing.T) {
	c := NewCollector()
	c.PhaseStart(PhaseSignatures)
	if s := c.Snapshot(); s.CurrentPhase != PhaseSignatures {
		t.Errorf("CurrentPhase = %q, want %q", s.CurrentPhase, PhaseSignatures)
	}
	c.PhaseEnd(PhaseSignatures, 10*time.Millisecond)
	c.Add(CounterRowsScanned, 100)
	c.Add(CounterRowsScanned, 50)
	c.SetGauge(GaugeSignatureWorkers, 4)
	c.SetGauge(GaugeSignatureWorkers, 8)

	if got := c.Counter(CounterRowsScanned); got != 150 {
		t.Errorf("counter = %d, want 150", got)
	}
	if got := c.Gauge(GaugeSignatureWorkers); got != 8 {
		t.Errorf("gauge = %d, want 8", got)
	}
	sp := c.Span(PhaseSignatures)
	if sp.Count != 1 || sp.Total != 10*time.Millisecond {
		t.Errorf("span = %+v, want {1 10ms}", sp)
	}
	if s := c.Snapshot(); s.CurrentPhase != "" {
		t.Errorf("CurrentPhase after end = %q, want empty", s.CurrentPhase)
	}

	c.Reset()
	if c.Counter(CounterRowsScanned) != 0 || c.Span(PhaseSignatures).Count != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(CounterIncrements, 1)
				c.SetGauge(GaugeVerifyWorkers, int64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Counter(CounterIncrements); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestNopZeroAllocs(t *testing.T) {
	rec := Nop()
	allocs := testing.AllocsPerRun(1000, func() {
		rec.PhaseStart(PhaseVerify)
		rec.Add(CounterVerifyTouches, 1)
		rec.SetGauge(GaugeVerifyWorkers, 4)
		rec.PhaseEnd(PhaseVerify, time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("no-op recorder allocates %v per run, want 0", allocs)
	}
}

func TestOrNopAndTee(t *testing.T) {
	if OrNop(nil) == nil {
		t.Fatal("OrNop(nil) returned nil")
	}
	a, b := NewCollector(), NewCollector()
	rec := Tee(a, b)
	rec.Add(CounterCandidates, 7)
	rec.PhaseStart(PhaseCandidates)
	rec.PhaseEnd(PhaseCandidates, time.Second)
	rec.SetGauge(GaugeCandidateWorkers, 2)
	for _, c := range []*Collector{a, b} {
		if c.Counter(CounterCandidates) != 7 || c.Span(PhaseCandidates).Count != 1 || c.Gauge(GaugeCandidateWorkers) != 2 {
			t.Error("tee did not forward to both recorders")
		}
	}
	if Tee(nil, a) != a {
		t.Error("Tee(nil, a) != a")
	}
	// Tee(a, nil) must still record into a.
	Tee(a, nil).Add(CounterCandidates, 1)
	if a.Counter(CounterCandidates) != 8 {
		t.Error("Tee(a, nil) dropped events")
	}
}

func TestPrometheusWriteTo(t *testing.T) {
	c := NewCollector()
	c.Add(CounterCandidates, 42)
	c.Add(CounterFalsePositives, 5)
	c.SetGauge(GaugeVerifyWorkers, 4)
	c.PhaseStart(PhaseVerify)
	c.PhaseEnd(PhaseVerify, 1500*time.Millisecond)

	var sb strings.Builder
	if _, err := c.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"assocmine_candidates_total 42",
		"assocmine_false_positives_total 5",
		"assocmine_verify_workers 4",
		`assocmine_phase_runs_total{phase="verify"} 1`,
		`assocmine_phase_seconds{phase="verify"} 1.5`,
		"# TYPE assocmine_candidates_total counter",
		"# TYPE assocmine_verify_workers gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic rendering for equal states.
	var sb2 strings.Builder
	if _, err := c.WriteTo(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("WriteTo is not deterministic")
	}
}

func TestExpvarPublish(t *testing.T) {
	c := NewCollector()
	c.Add(CounterCandidates, 3)
	Publish("test_collector", c)
	// Re-publishing must not panic and must rebind.
	c2 := NewCollector()
	c2.Add(CounterCandidates, 9)
	Publish("test_collector", c2)

	v := c2.ExpvarFunc()
	if !strings.Contains(v.String(), "\"candidates\":9") {
		t.Errorf("expvar func missing counter: %s", v.String())
	}
}
