package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// metricPrefix namespaces every exported series.
const metricPrefix = "assocmine_"

// WriteTo renders the collector state in the Prometheus text exposition
// format: counters as <prefix><name>_total, gauges bare, and phase
// spans as the assocmine_phase_runs_total / assocmine_phase_seconds
// pair labelled by phase. Output is sorted, so equal states render to
// equal bytes. Implements io.WriterTo.
func (c *Collector) WriteTo(w io.Writer) (int64, error) {
	s := c.Snapshot()
	var b strings.Builder

	names := sortedKeys(s.Counters)
	for _, name := range names {
		fmt.Fprintf(&b, "# TYPE %s%s_total counter\n%s%s_total %d\n",
			metricPrefix, name, metricPrefix, name, s.Counters[name])
	}
	names = sortedKeys(s.Gauges)
	for _, name := range names {
		fmt.Fprintf(&b, "# TYPE %s%s gauge\n%s%s %d\n",
			metricPrefix, name, metricPrefix, name, s.Gauges[name])
	}
	if len(s.Spans) > 0 {
		phases := make([]string, 0, len(s.Spans))
		for p := range s.Spans {
			phases = append(phases, p)
		}
		sort.Strings(phases)
		fmt.Fprintf(&b, "# TYPE %sphase_runs_total counter\n", metricPrefix)
		for _, p := range phases {
			fmt.Fprintf(&b, "%sphase_runs_total{phase=%q} %d\n", metricPrefix, p, s.Spans[p].Count)
		}
		fmt.Fprintf(&b, "# TYPE %sphase_seconds counter\n", metricPrefix)
		for _, p := range phases {
			fmt.Fprintf(&b, "%sphase_seconds{phase=%q} %g\n", metricPrefix, p, s.Spans[p].Total.Seconds())
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
