// Package pairs provides the column-pair value types shared by the
// candidate-generation, LSH, and verification stages: an ordered pair
// of column indices, a deduplicating pair set, and scored pairs.
package pairs

import "sort"

// Pair is an unordered column pair stored canonically with I < J.
type Pair struct {
	I, J int32
}

// Make returns the canonical Pair for columns a and b. It panics when
// a == b; self-pairs are never candidates.
func Make(a, b int32) Pair {
	switch {
	case a < b:
		return Pair{I: a, J: b}
	case a > b:
		return Pair{I: b, J: a}
	default:
		panic("pairs: self pair")
	}
}

func (p Pair) key() uint64 { return uint64(uint32(p.I))<<32 | uint64(uint32(p.J)) }

// Scored is a pair annotated with an estimated and (optionally) exact
// similarity, as produced by candidate generation and verification.
type Scored struct {
	Pair
	// Estimate is the signature-based similarity estimate that made
	// this pair a candidate; NaN when the generating scheme produces no
	// estimate (H-LSH, M-LSH bucket collisions).
	Estimate float64
	// Exact is the verified similarity from the pruning pass; only
	// meaningful after verification.
	Exact float64
}

// Set is a deduplicating collection of Pairs.
type Set struct {
	m map[uint64]struct{}
	s []Pair
}

// NewSet returns an empty Set with capacity hint n.
func NewSet(n int) *Set {
	return &Set{m: make(map[uint64]struct{}, n)}
}

// Add inserts the canonical pair (a, b); it reports whether the pair
// was new.
func (s *Set) Add(a, b int32) bool {
	p := Make(a, b)
	k := p.key()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = struct{}{}
	s.s = append(s.s, p)
	return true
}

// Contains reports whether the pair (a, b) is in the set.
func (s *Set) Contains(a, b int32) bool {
	_, ok := s.m[Make(a, b).key()]
	return ok
}

// Len returns the number of distinct pairs.
func (s *Set) Len() int { return len(s.s) }

// Slice returns the pairs in insertion order. The caller must not
// modify the returned slice.
func (s *Set) Slice() []Pair { return s.s }

// Sorted returns the pairs ordered by (I, J), freshly allocated.
func (s *Set) Sorted() []Pair {
	out := append([]Pair(nil), s.s...)
	Sort(out)
	return out
}

// Sort orders pairs by (I, J) in place.
func Sort(ps []Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].I != ps[b].I {
			return ps[a].I < ps[b].I
		}
		return ps[a].J < ps[b].J
	})
}

// SortScored orders scored pairs by decreasing Exact similarity,
// breaking ties by (I, J) so output is deterministic.
func SortScored(ps []Scored) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].Exact != ps[b].Exact {
			return ps[a].Exact > ps[b].Exact
		}
		if ps[a].I != ps[b].I {
			return ps[a].I < ps[b].I
		}
		return ps[a].J < ps[b].J
	})
}
