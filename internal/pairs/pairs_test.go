package pairs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMakeCanonical(t *testing.T) {
	if p := Make(5, 2); p.I != 2 || p.J != 5 {
		t.Errorf("Make(5,2) = %+v", p)
	}
	if p := Make(2, 5); p.I != 2 || p.J != 5 {
		t.Errorf("Make(2,5) = %+v", p)
	}
}

func TestMakePanicsOnSelfPair(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Make(3,3) did not panic")
		}
	}()
	Make(3, 3)
}

func TestSetDedup(t *testing.T) {
	s := NewSet(4)
	if !s.Add(1, 2) {
		t.Error("first Add returned false")
	}
	if s.Add(2, 1) {
		t.Error("swapped duplicate Add returned true")
	}
	if s.Add(1, 2) {
		t.Error("duplicate Add returned true")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if !s.Contains(2, 1) {
		t.Error("Contains(2,1) false")
	}
	if s.Contains(1, 3) {
		t.Error("Contains(1,3) true")
	}
}

func TestSetSorted(t *testing.T) {
	s := NewSet(0)
	s.Add(3, 1)
	s.Add(0, 2)
	s.Add(1, 2)
	got := s.Sorted()
	want := []Pair{{0, 2}, {1, 2}, {1, 3}}
	if len(got) != len(want) {
		t.Fatalf("Sorted = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
	// Insertion order preserved in Slice.
	sl := s.Slice()
	if sl[0] != (Pair{1, 3}) {
		t.Errorf("Slice[0] = %v", sl[0])
	}
}

func TestSortScored(t *testing.T) {
	ps := []Scored{
		{Pair: Pair{3, 4}, Exact: 0.5},
		{Pair: Pair{1, 2}, Exact: 0.9},
		{Pair: Pair{0, 2}, Exact: 0.5},
	}
	SortScored(ps)
	if ps[0].Exact != 0.9 {
		t.Errorf("first pair %+v", ps[0])
	}
	if ps[1].Pair != (Pair{0, 2}) || ps[2].Pair != (Pair{3, 4}) {
		t.Errorf("tie break wrong: %+v %+v", ps[1], ps[2])
	}
	_ = math.NaN() // keep math imported for future tolerance checks
}

func TestQuickSetAddIdempotent(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewSet(0)
		type entry struct{ a, b int32 }
		var added []entry
		for i := 0; i+1 < len(raw); i += 2 {
			a, b := int32(raw[i]), int32(raw[i+1])
			if a == b {
				continue
			}
			s.Add(a, b)
			added = append(added, entry{a, b})
		}
		for _, e := range added {
			if !s.Contains(e.a, e.b) || !s.Contains(e.b, e.a) {
				return false
			}
			if s.Add(e.a, e.b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
