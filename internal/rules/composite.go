package rules

import (
	"fmt"
	"sort"

	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
)

// The Section 7 composite-rule machinery: disjunctive consequents via
// OR-composed signatures and conjunctive consequents via the
// cardinality comparison.

// OrRule is a candidate rule From => To[0] ∨ To[1].
type OrRule struct {
	From     int32
	To       [2]int32
	Estimate float64 // estimated similarity S(c_From, c_To0 ∨ c_To1)
	Exact    float64
}

// AndRule is a candidate rule From => To[0] ∧ To[1].
type AndRule struct {
	From     int32
	To       [2]int32
	Estimate float64 // min of the two single-rule confidence estimates
}

// OrSimilarityEstimate returns the estimated similarity between column
// i and the induced column c_j ∨ c_j2, computed entirely from the MH
// signature matrix: the OR column's signature is the component-wise
// minimum (Section 7), so no second data pass is needed.
func OrSimilarityEstimate(sig *minhash.Signatures, i, j, j2 int) float64 {
	agree, valid := 0, 0
	for l := 0; l < sig.K; l++ {
		vi := sig.Vals[l*sig.M+i]
		vo := sig.Vals[l*sig.M+j]
		if v2 := sig.Vals[l*sig.M+j2]; v2 < vo {
			vo = v2
		}
		valid++
		if vi != minhash.Empty && vi == vo {
			agree++
		}
	}
	if valid == 0 {
		return 0
	}
	return float64(agree) / float64(valid)
}

// OrCandidates enumerates rules c_i => c_j ∨ c_j2 whose estimated
// similarity between c_i and the OR column meets minSim, restricted to
// consequent pairs drawn from the given shortlist (the full triple
// enumeration is cubic; the paper suggests composing columns that are
// already individually related to c_i). shortlist maps each antecedent
// column to consequent columns worth trying.
func OrCandidates(sig *minhash.Signatures, shortlist map[int32][]int32, minSim float64) ([]OrRule, error) {
	if minSim <= 0 || minSim > 1 {
		return nil, fmt.Errorf("rules: minSim must be in (0,1], got %v", minSim)
	}
	var out []OrRule
	for from, tos := range shortlist {
		if int(from) >= sig.M || from < 0 {
			return nil, fmt.Errorf("rules: shortlist antecedent %d out of range", from)
		}
		for a := 0; a < len(tos); a++ {
			for b := a + 1; b < len(tos); b++ {
				j, j2 := tos[a], tos[b]
				if int(j) >= sig.M || int(j2) >= sig.M || j < 0 || j2 < 0 {
					return nil, fmt.Errorf("rules: shortlist consequent out of range")
				}
				if j == int32(from) || j2 == int32(from) || j == j2 {
					continue
				}
				if s := OrSimilarityEstimate(sig, int(from), int(j), int(j2)); s >= minSim {
					to := [2]int32{j, j2}
					if to[0] > to[1] {
						to[0], to[1] = to[1], to[0]
					}
					out = append(out, OrRule{From: from, To: to, Estimate: s})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Estimate != out[b].Estimate {
			return out[a].Estimate > out[b].Estimate
		}
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To[0] < out[b].To[0]
	})
	return out, nil
}

// VerifyOrRules computes the exact similarity between each rule's
// antecedent and its materialised OR column, keeping rules at or above
// minSim with Exact filled in. Costs one OR-column merge per rule plus
// the set intersections — no data pass (the matrix is already
// column-major).
func VerifyOrRules(m *matrix.Matrix, cand []OrRule, minSim float64) ([]OrRule, error) {
	if minSim <= 0 || minSim > 1 {
		return nil, fmt.Errorf("rules: minSim must be in (0,1], got %v", minSim)
	}
	var out []OrRule
	for _, r := range cand {
		if int(r.From) >= m.NumCols() || int(r.To[0]) >= m.NumCols() || int(r.To[1]) >= m.NumCols() ||
			r.From < 0 || r.To[0] < 0 || r.To[1] < 0 {
			return nil, fmt.Errorf("rules: rule %+v references column out of range", r)
		}
		or := matrix.OrColumns(m.Column(int(r.To[0])), m.Column(int(r.To[1])))
		ante := m.Column(int(r.From))
		inter := len(matrix.AndColumns(ante, or))
		union := len(ante) + len(or) - inter
		if union == 0 {
			continue
		}
		s := float64(inter) / float64(union)
		if s >= minSim {
			r.Exact = s
			out = append(out, r)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Exact != out[b].Exact {
			return out[a].Exact > out[b].Exact
		}
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To[0] < out[b].To[0]
	})
	return out, nil
}

// AndCandidates implements the Section 7 conjunction construction:
// "c_i implies c_j ∧ c_j'" holds exactly when both c_i => c_j and
// c_i => c_j' hold (the extra cardinality condition |C_i| ≈ |C_i ∩ C_j
// ∩ C_j'| is subsumed by requiring both single-rule confidences high).
// Given verified single rules it pairs up rules sharing an antecedent
// whose confidences both meet minConf.
func AndCandidates(single []Rule, minConf float64) ([]AndRule, error) {
	if minConf <= 0 || minConf > 1 {
		return nil, fmt.Errorf("rules: minConf must be in (0,1], got %v", minConf)
	}
	byFrom := map[int32][]Rule{}
	for _, r := range single {
		conf := r.Exact
		if conf == 0 {
			conf = r.Estimate
		}
		if conf >= minConf {
			byFrom[r.From] = append(byFrom[r.From], r)
		}
	}
	var out []AndRule
	for from, rs := range byFrom {
		sort.Slice(rs, func(a, b int) bool { return rs[a].To < rs[b].To })
		for a := 0; a < len(rs); a++ {
			for b := a + 1; b < len(rs); b++ {
				ca, cb := rs[a].Exact, rs[b].Exact
				if ca == 0 {
					ca = rs[a].Estimate
				}
				if cb == 0 {
					cb = rs[b].Estimate
				}
				est := ca
				if cb < est {
					est = cb
				}
				out = append(out, AndRule{
					From:     from,
					To:       [2]int32{rs[a].To, rs[b].To},
					Estimate: est,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		if out[a].To[0] != out[b].To[0] {
			return out[a].To[0] < out[b].To[0]
		}
		return out[a].To[1] < out[b].To[1]
	})
	return out, nil
}
