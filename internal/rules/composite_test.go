package rules

import (
	"math"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
)

// orFixture: column 0 is (almost) the union of columns 1 and 2, which
// are individually dissimilar to it.
func orFixture(rng *hashing.SplitMix64, rows int) *matrix.Matrix {
	b := matrix.NewBuilder(rows, 4)
	for r := 0; r < rows; r++ {
		u := rng.Float64()
		switch {
		case u < 0.1:
			b.Set(r, 0)
			b.Set(r, 1)
		case u < 0.2:
			b.Set(r, 0)
			b.Set(r, 2)
		case u < 0.25:
			b.Set(r, 3) // noise
		}
	}
	return b.Build()
}

// TestOrSimilarityEstimateMatchesInducedColumn: the componentwise-min
// estimate must equal the MH estimate against the materialised OR
// column.
func TestOrSimilarityEstimateMatchesInducedColumn(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	m := orFixture(rng, 500)
	m2, orIdx := m.WithOrColumn(1, 2)
	const k, seed = 200, 5
	sig, err := minhash.Compute(m2.Stream(), k, seed)
	if err != nil {
		t.Fatal(err)
	}
	est := OrSimilarityEstimate(sig, 0, 1, 2)
	direct := sig.Estimate(0, orIdx)
	if math.Abs(est-direct) > 1e-12 {
		t.Errorf("OrSimilarityEstimate = %v, direct estimate vs materialised column = %v", est, direct)
	}
	// And both should be near the true similarity to the OR column.
	truth := m2.Similarity(0, orIdx)
	if math.Abs(est-truth) > 0.15 {
		t.Errorf("estimate %v far from truth %v", est, truth)
	}
}

func TestOrCandidatesFindDisjunctiveRule(t *testing.T) {
	rng := hashing.NewSplitMix64(2)
	m := orFixture(rng, 2000)
	sig, _ := minhash.Compute(m.Stream(), 150, 7)
	shortlist := map[int32][]int32{0: {1, 2, 3}}
	cand, err := OrCandidates(sig, shortlist, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range cand {
		if r.From == 0 && r.To == [2]int32{1, 2} {
			found = true
		}
	}
	if !found {
		t.Errorf("c0 => c1 ∨ c2 not found; candidates: %+v", cand)
	}
	// The individual similarities should be too low to pass alone.
	if s := sig.Estimate(0, 1); s >= 0.7 {
		t.Errorf("fixture broken: S(c0,c1) = %v already high", s)
	}
}

func TestOrCandidatesValidation(t *testing.T) {
	sig := &minhash.Signatures{K: 2, M: 3, Vals: make([]uint64, 6)}
	if _, err := OrCandidates(sig, nil, 0); err == nil {
		t.Error("minSim 0 accepted")
	}
	if _, err := OrCandidates(sig, map[int32][]int32{9: {0, 1}}, 0.5); err == nil {
		t.Error("out-of-range antecedent accepted")
	}
	if _, err := OrCandidates(sig, map[int32][]int32{0: {1, 9}}, 0.5); err == nil {
		t.Error("out-of-range consequent accepted")
	}
}

func TestOrCandidatesSkipsDegenerate(t *testing.T) {
	m := matrix.MustNew(10, [][]int32{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}})
	sig, _ := minhash.Compute(m.Stream(), 20, 3)
	// Shortlist includes the antecedent itself and duplicates.
	cand, err := OrCandidates(sig, map[int32][]int32{0: {0, 1, 1}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cand {
		if r.To[0] == r.From || r.To[1] == r.From || r.To[0] == r.To[1] {
			t.Errorf("degenerate rule %+v emitted", r)
		}
	}
}

func TestVerifyOrRules(t *testing.T) {
	rng := hashing.NewSplitMix64(9)
	m := orFixture(rng, 2000)
	cand := []OrRule{
		{From: 0, To: [2]int32{1, 2}, Estimate: 0.9}, // genuinely similar
		{From: 3, To: [2]int32{1, 2}, Estimate: 0.9}, // noise: not similar
	}
	out, err := VerifyOrRules(m, cand, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].From != 0 {
		t.Fatalf("verified = %+v", out)
	}
	// Exact value matches a direct computation.
	or := matrix.OrColumns(m.Column(1), m.Column(2))
	inter := len(matrix.AndColumns(m.Column(0), or))
	union := m.ColumnSize(0) + len(or) - inter
	want := float64(inter) / float64(union)
	if math.Abs(out[0].Exact-want) > 1e-12 {
		t.Errorf("exact = %v, want %v", out[0].Exact, want)
	}
	// Validation.
	if _, err := VerifyOrRules(m, cand, 0); err == nil {
		t.Error("minSim 0 accepted")
	}
	if _, err := VerifyOrRules(m, []OrRule{{From: 99, To: [2]int32{0, 1}}}, 0.5); err == nil {
		t.Error("out-of-range rule accepted")
	}
}

func TestAndCandidates(t *testing.T) {
	single := []Rule{
		{From: 0, To: 1, Exact: 0.95},
		{From: 0, To: 2, Exact: 0.90},
		{From: 0, To: 3, Exact: 0.50}, // below threshold
		{From: 5, To: 6, Exact: 0.99}, // lone antecedent
	}
	out, err := AndCandidates(single, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("AndCandidates = %+v", out)
	}
	r := out[0]
	if r.From != 0 || r.To != [2]int32{1, 2} {
		t.Errorf("rule = %+v", r)
	}
	if r.Estimate != 0.90 {
		t.Errorf("estimate = %v, want min(0.95, 0.90)", r.Estimate)
	}
	if _, err := AndCandidates(nil, 0); err == nil {
		t.Error("minConf 0 accepted")
	}
}

func TestAndCandidatesUsesEstimateWhenNoExact(t *testing.T) {
	single := []Rule{
		{From: 0, To: 1, Estimate: 0.95},
		{From: 0, To: 2, Estimate: 0.92},
	}
	out, err := AndCandidates(single, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Estimate != 0.92 {
		t.Fatalf("out = %+v", out)
	}
}

// TestAndRuleSemantics: an AND rule built from two verified rules must
// actually hold in the data (conf(c0 => c1 ∧ c2) high).
func TestAndRuleSemantics(t *testing.T) {
	rng := hashing.NewSplitMix64(6)
	b := matrix.NewBuilder(2000, 3)
	for r := 0; r < 2000; r++ {
		if rng.Float64() < 0.05 {
			b.Set(r, 0)
			b.Set(r, 1)
			b.Set(r, 2)
		} else {
			if rng.Float64() < 0.2 {
				b.Set(r, 1)
			}
			if rng.Float64() < 0.2 {
				b.Set(r, 2)
			}
		}
	}
	m := b.Build()
	sig, _ := minhash.Compute(m.Stream(), 100, 9)
	cand, err := Candidates(sig, Options{MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	verified, err := Verify(m.Stream(), cand, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ands, err := AndCandidates(verified, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ands {
		if r.From == 0 && r.To == [2]int32{1, 2} {
			found = true
		}
	}
	if !found {
		t.Fatalf("c0 => c1 ∧ c2 not derived; singles: %+v", verified)
	}
	// Check conjunction confidence directly.
	and12 := matrix.AndColumns(m.Column(1), m.Column(2))
	interAll := len(matrix.AndColumns(m.Column(0), and12))
	conf := float64(interAll) / float64(m.ColumnSize(0))
	if conf < 0.9 {
		t.Errorf("true conjunction confidence %v below 0.9", conf)
	}
}
