package rules

import (
	"fmt"
	"sort"

	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
)

// Section 7's anticorrelation extension: mutual exclusion between
// columns. Unlike similarity mining this *requires* a support floor —
// "extremely sparse columns are likely to be mutually exclusive by
// sheer chance" — but, as the paper notes, the hashing machinery still
// applies where a-priori would not help even with support pruning
// (a-priori counts co-occurrence; exclusion is its absence).

// Exclusion is a column pair that co-occurs far less than independence
// predicts.
type Exclusion struct {
	I, J int32
	// Expected is the co-occurrence count under independence:
	// |C_i|·|C_j|/n.
	Expected float64
	// Observed is the (exact or estimated) co-occurrence count.
	Observed float64
	// Lift is Observed/Expected; mutual exclusion is Lift << 1.
	Lift float64
}

// ExclusionOptions configures exclusion mining.
type ExclusionOptions struct {
	// MinSupport is the support-fraction floor both columns must meet
	// (statistical validity; required).
	MinSupport float64
	// MaxLift is the lift ceiling for reporting; pairs with
	// Observed/Expected <= MaxLift are returned. Defaults to 0.2.
	MaxLift float64
}

func (o *ExclusionOptions) validate() error {
	if o.MinSupport <= 0 || o.MinSupport > 1 {
		return fmt.Errorf("rules: exclusion mining requires MinSupport in (0,1], got %v", o.MinSupport)
	}
	if o.MaxLift == 0 {
		o.MaxLift = 0.2
	}
	if o.MaxLift < 0 {
		return fmt.Errorf("rules: MaxLift must be non-negative")
	}
	return nil
}

// MutualExclusions finds anticorrelated column pairs exactly: both
// columns at or above the support floor, observed co-occurrence at most
// MaxLift times the independence expectation.
func MutualExclusions(m *matrix.Matrix, opt ExclusionOptions) ([]Exclusion, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := float64(m.NumRows())
	minCount := int(opt.MinSupport * n)
	if float64(minCount) < opt.MinSupport*n {
		minCount++
	}
	var eligible []int32
	for c := 0; c < m.NumCols(); c++ {
		if m.ColumnSize(c) >= minCount {
			eligible = append(eligible, int32(c))
		}
	}
	var out []Exclusion
	for a := 0; a < len(eligible); a++ {
		for b := a + 1; b < len(eligible); b++ {
			i, j := eligible[a], eligible[b]
			expected := float64(m.ColumnSize(int(i))) * float64(m.ColumnSize(int(j))) / n
			observed := float64(m.IntersectSize(int(i), int(j)))
			if observed <= opt.MaxLift*expected {
				out = append(out, Exclusion{
					I: i, J: j,
					Expected: expected, Observed: observed,
					Lift: observed / expected,
				})
			}
		}
	}
	sortExclusions(out)
	return out, nil
}

// MutualExclusionsFromSignatures finds anticorrelation candidates from
// an MH signature matrix without touching the data again: the
// co-occurrence count is recovered from the similarity estimate via
// |C_i ∩ C_j| = S/(1+S) · (|C_i|+|C_j|). Pairs whose estimated lift is
// below MaxLift should then be confirmed with a verification pass
// (exclusion candidates are cheap to verify: one streaming pass).
func MutualExclusionsFromSignatures(sig *minhash.Signatures, colSizes []int, numRows int, opt ExclusionOptions) ([]Exclusion, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(colSizes) != sig.M {
		return nil, fmt.Errorf("rules: colSizes has %d entries for %d columns", len(colSizes), sig.M)
	}
	if numRows <= 0 {
		return nil, fmt.Errorf("rules: numRows must be positive")
	}
	n := float64(numRows)
	minCount := int(opt.MinSupport * n)
	if float64(minCount) < opt.MinSupport*n {
		minCount++
	}
	var eligible []int32
	for c := 0; c < sig.M; c++ {
		if colSizes[c] >= minCount {
			eligible = append(eligible, int32(c))
		}
	}
	var out []Exclusion
	for a := 0; a < len(eligible); a++ {
		for b := a + 1; b < len(eligible); b++ {
			i, j := eligible[a], eligible[b]
			s := sig.Estimate(int(i), int(j))
			observed := s / (1 + s) * float64(colSizes[i]+colSizes[j])
			expected := float64(colSizes[i]) * float64(colSizes[j]) / n
			if observed <= opt.MaxLift*expected {
				out = append(out, Exclusion{
					I: i, J: j,
					Expected: expected, Observed: observed,
					Lift: observed / expected,
				})
			}
		}
	}
	sortExclusions(out)
	return out, nil
}

func sortExclusions(xs []Exclusion) {
	sort.Slice(xs, func(a, b int) bool {
		if xs[a].Lift != xs[b].Lift {
			return xs[a].Lift < xs[b].Lift
		}
		if xs[a].I != xs[b].I {
			return xs[a].I < xs[b].I
		}
		return xs[a].J < xs[b].J
	})
}

// OrSimilarityEstimateMulti generalises OrSimilarityEstimate to a
// disjunction of any number of consequents: the signature of
// c_{j1} ∨ … ∨ c_{jn} is the component-wise minimum of the individual
// signatures. The paper notes such extensions carry an overhead
// exponential in the number of composed columns when *searching* for
// them; evaluating one given composition is linear.
func OrSimilarityEstimateMulti(sig *minhash.Signatures, i int, js []int) float64 {
	if len(js) == 0 {
		return 0
	}
	agree := 0
	for l := 0; l < sig.K; l++ {
		vi := sig.Vals[l*sig.M+i]
		vo := minhash.Empty
		for _, j := range js {
			if v := sig.Vals[l*sig.M+j]; v < vo {
				vo = v
			}
		}
		if vi != minhash.Empty && vi == vo {
			agree++
		}
	}
	return float64(agree) / float64(sig.K)
}
