package rules

import (
	"math"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
)

// exclusionFixture: columns 0 and 1 are dense and never co-occur;
// columns 2 and 3 are dense and independent; column 4 is too sparse to
// qualify.
func exclusionFixture(rng *hashing.SplitMix64, rows int) *matrix.Matrix {
	b := matrix.NewBuilder(rows, 5)
	for r := 0; r < rows; r++ {
		if rng.Float64() < 0.3 {
			b.Set(r, 0)
		} else if rng.Float64() < 0.4 {
			b.Set(r, 1) // only when 0 absent: mutually exclusive
		}
		if rng.Float64() < 0.3 {
			b.Set(r, 2)
		}
		if rng.Float64() < 0.3 {
			b.Set(r, 3)
		}
		if rng.Float64() < 0.001 {
			b.Set(r, 4)
		}
	}
	return b.Build()
}

func TestExclusionOptionsValidate(t *testing.T) {
	m := matrix.MustNew(1, [][]int32{{0}})
	for _, o := range []ExclusionOptions{{MinSupport: 0}, {MinSupport: 2}, {MinSupport: 0.1, MaxLift: -1}} {
		if _, err := MutualExclusions(m, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
}

func TestMutualExclusionsExact(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	m := exclusionFixture(rng, 5000)
	out, err := MutualExclusions(m, ExclusionOptions{MinSupport: 0.05, MaxLift: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("exclusions = %+v", out)
	}
	x := out[0]
	if x.I != 0 || x.J != 1 {
		t.Errorf("exclusion pair (%d,%d), want (0,1)", x.I, x.J)
	}
	if x.Observed != 0 {
		t.Errorf("observed = %v, want 0 (never co-occur)", x.Observed)
	}
	if x.Lift != 0 {
		t.Errorf("lift = %v", x.Lift)
	}
	// Independent pair (2,3) must not be flagged at MaxLift 0.1 since
	// its lift is ~1.
	for _, e := range out {
		if e.I == 2 && e.J == 3 {
			t.Error("independent pair flagged as exclusive")
		}
	}
}

func TestMutualExclusionsSupportFloor(t *testing.T) {
	rng := hashing.NewSplitMix64(2)
	m := exclusionFixture(rng, 5000)
	// Column 4 is sparse; with a floor of 5% it can never appear even
	// though it is trivially "exclusive" with nearly everything.
	out, err := MutualExclusions(m, ExclusionOptions{MinSupport: 0.05, MaxLift: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range out {
		if x.I == 4 || x.J == 4 {
			t.Error("sparse column passed the support floor")
		}
	}
}

func TestMutualExclusionsFromSignatures(t *testing.T) {
	rng := hashing.NewSplitMix64(3)
	m := exclusionFixture(rng, 5000)
	sig, err := minhash.Compute(m.Stream(), 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, m.NumCols())
	for c := range sizes {
		sizes[c] = m.ColumnSize(c)
	}
	out, err := MutualExclusionsFromSignatures(sig, sizes, m.NumRows(), ExclusionOptions{
		MinSupport: 0.05, MaxLift: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, x := range out {
		if x.I == 0 && x.J == 1 {
			found = true
		}
		if x.I == 2 && x.J == 3 {
			t.Error("independent pair flagged by signature-based exclusion")
		}
	}
	if !found {
		t.Errorf("signature-based exclusion missed the planted pair: %+v", out)
	}
	// Validation.
	if _, err := MutualExclusionsFromSignatures(sig, sizes[:2], m.NumRows(), ExclusionOptions{MinSupport: 0.05}); err == nil {
		t.Error("wrong colSizes length accepted")
	}
	if _, err := MutualExclusionsFromSignatures(sig, sizes, 0, ExclusionOptions{MinSupport: 0.05}); err == nil {
		t.Error("numRows 0 accepted")
	}
}

func TestOrSimilarityEstimateMulti(t *testing.T) {
	// Column 0 = union of 1, 2, 3 exactly.
	m := matrix.MustNew(30, [][]int32{
		{0, 1, 2, 10, 11, 20, 21},
		{0, 1, 2},
		{10, 11},
		{20, 21},
	})
	sig, err := minhash.Compute(m.Stream(), 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := OrSimilarityEstimateMulti(sig, 0, []int{1, 2, 3})
	if got != 1 {
		t.Errorf("3-way OR similarity = %v, want 1 (exact union)", got)
	}
	// Pairwise similarity is well below 1.
	if s := sig.Estimate(0, 1); s > 0.7 {
		t.Errorf("fixture broken: pairwise sim %v too high", s)
	}
	// Two-way consistency with OrSimilarityEstimate.
	two := OrSimilarityEstimate(sig, 0, 1, 2)
	multi := OrSimilarityEstimateMulti(sig, 0, []int{1, 2})
	if math.Abs(two-multi) > 1e-12 {
		t.Errorf("2-way multi %v != OrSimilarityEstimate %v", multi, two)
	}
	if OrSimilarityEstimateMulti(sig, 0, nil) != 0 {
		t.Error("empty disjunction should score 0")
	}
}
