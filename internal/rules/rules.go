// Package rules implements the extension of Section 6 — mining
// high-confidence association rules c_i => c_j without any support
// requirement — and the composite-rule machinery of Section 7
// (disjunctive consequents via OR-composed signatures, conjunctive
// consequents via the cardinality argument).
//
// The key identity is
//
//	conf(c_i => c_j) = |C_i ∩ C_j| / |C_i| = S(c_i,c_j) · |C_i ∪ C_j| / |C_i|,
//
// and Pr[h(c_i) <= h(c_j)] = |C_i| / |C_i ∪ C_j| for a random row-order
// hash h, so both factors are estimable from the same min-hash matrix:
// confidence ≈ (agreement fraction) / (<= fraction).
package rules

import (
	"fmt"
	"math"
	"sort"

	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
)

// Rule is a directed candidate rule From => To with estimated and
// (after verification) exact confidence.
type Rule struct {
	From, To int32
	Estimate float64 // signature-based confidence estimate
	Exact    float64 // verified confidence; set by Verify
}

// Options configures candidate-rule generation.
type Options struct {
	// MinConfidence is the confidence threshold.
	MinConfidence float64
	// MinAgreement discards pairs agreeing on fewer min-hash values
	// (both estimator numerator and denominator are noisy for tiny
	// agreement counts). Defaults to 2 when zero.
	MinAgreement int
}

func (o *Options) validate() error {
	if o.MinConfidence <= 0 || o.MinConfidence > 1 {
		return fmt.Errorf("rules: MinConfidence must be in (0,1], got %v", o.MinConfidence)
	}
	if o.MinAgreement == 0 {
		o.MinAgreement = 2
	}
	if o.MinAgreement < 0 {
		return fmt.Errorf("rules: MinAgreement must be non-negative")
	}
	return nil
}

// Candidates runs the extended Row-Sorting estimation of Section 6 over
// an MH signature matrix: for every ordered pair it maintains both the
// agreement count and the h(c_i) <= h(c_j) count, estimating confidence
// as their ratio. As the paper notes, this enumeration is O(k·m²); the
// agreement pre-filter keeps the emitted set small.
func Candidates(sig *minhash.Signatures, opt Options) ([]Rule, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var out []Rule
	colI := make([]uint64, sig.K)
	colJ := make([]uint64, sig.K)
	for i := 0; i < sig.M; i++ {
		sig.Column(i, colI)
		if allEmpty(colI) {
			continue
		}
		for j := 0; j < sig.M; j++ {
			if i == j {
				continue
			}
			sig.Column(j, colJ)
			agree, le := 0, 0
			for l := 0; l < sig.K; l++ {
				vi, vj := colI[l], colJ[l]
				if vi == minhash.Empty {
					continue
				}
				if vi == vj {
					agree++
				}
				if vi <= vj {
					le++
				}
			}
			if agree < opt.MinAgreement || le == 0 {
				continue
			}
			conf := float64(agree) / float64(le)
			if conf > 1 {
				conf = 1
			}
			if conf >= opt.MinConfidence {
				out = append(out, Rule{From: int32(i), To: int32(j), Estimate: conf})
			}
		}
	}
	sortRules(out)
	return out, nil
}

func allEmpty(vals []uint64) bool {
	for _, v := range vals {
		if v != minhash.Empty {
			return false
		}
	}
	return true
}

// HighConfidenceCandidates implements the alternate technique the paper
// suggests for conf ≈ 1: (a) any pair with Ŝ >= minConf is a candidate
// in both directions (S lower-bounds both confidences), and (b) a pair
// with Ŝ ≈ |C_i|/|C_j| (within tol) is a candidate for c_i => c_j,
// since conf(c_i => c_j) ≈ 1 forces S ≈ |C_i|/|C_j|. colSizes must hold
// the exact column cardinalities (known from the signature pass).
func HighConfidenceCandidates(sig *minhash.Signatures, colSizes []int, minConf, tol float64) ([]Rule, error) {
	if len(colSizes) != sig.M {
		return nil, fmt.Errorf("rules: colSizes has %d entries for %d columns", len(colSizes), sig.M)
	}
	if minConf <= 0 || minConf > 1 {
		return nil, fmt.Errorf("rules: minConf must be in (0,1], got %v", minConf)
	}
	if tol < 0 || tol >= 1 {
		return nil, fmt.Errorf("rules: tol must be in [0,1), got %v", tol)
	}
	var out []Rule
	for i := 0; i < sig.M; i++ {
		if colSizes[i] == 0 {
			continue
		}
		for j := 0; j < sig.M; j++ {
			if i == j || colSizes[j] == 0 {
				continue
			}
			s := sig.Estimate(i, j)
			if s >= minConf {
				out = append(out, Rule{From: int32(i), To: int32(j), Estimate: s})
				continue
			}
			ratio := float64(colSizes[i]) / float64(colSizes[j])
			if ratio <= 1 && s > 0 && math.Abs(s-ratio) <= tol {
				out = append(out, Rule{From: int32(i), To: int32(j), Estimate: s / ratio * 1})
			}
		}
	}
	sortRules(out)
	return out, nil
}

// Verify makes one pass over the data computing the exact confidence of
// each candidate rule and keeps those meeting minConf. Both |C_i ∩ C_j|
// and |C_i| are counted in the same pass.
func Verify(src matrix.RowSource, cand []Rule, minConf float64) ([]Rule, error) {
	if minConf <= 0 || minConf > 1 {
		return nil, fmt.Errorf("rules: minConf must be in (0,1], got %v", minConf)
	}
	m := src.NumCols()
	// Deduplicate the undirected pairs behind the directed rules.
	set := pairs.NewSet(len(cand))
	for _, r := range cand {
		if r.From == r.To || r.From < 0 || r.To < 0 || int(r.From) >= m || int(r.To) >= m {
			return nil, fmt.Errorf("rules: invalid rule %d => %d", r.From, r.To)
		}
		set.Add(r.From, r.To)
	}
	ps := set.Slice()
	pairsOf := make([][]int32, m)
	for idx, p := range ps {
		pairsOf[p.I] = append(pairsOf[p.I], int32(idx))
		pairsOf[p.J] = append(pairsOf[p.J], int32(idx))
	}
	inter := make([]int32, len(ps))
	lastRow := make([]int32, len(ps))
	for i := range lastRow {
		lastRow[i] = -1
	}
	colSize := make([]int32, m)
	err := src.Scan(func(row int, cols []int32) error {
		r := int32(row)
		for _, c := range cols {
			colSize[c]++
			for _, idx := range pairsOf[c] {
				if lastRow[idx] == r {
					inter[idx]++
				} else {
					lastRow[idx] = r
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	interOf := make(map[pairs.Pair]int32, len(ps))
	for idx, p := range ps {
		interOf[p] = inter[idx]
	}
	var out []Rule
	seen := map[[2]int32]bool{}
	for _, r := range cand {
		key := [2]int32{r.From, r.To}
		if seen[key] {
			continue
		}
		seen[key] = true
		if colSize[r.From] == 0 {
			continue
		}
		conf := float64(interOf[pairs.Make(r.From, r.To)]) / float64(colSize[r.From])
		if conf >= minConf {
			r.Exact = conf
			out = append(out, r)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Exact != out[b].Exact {
			return out[a].Exact > out[b].Exact
		}
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To < out[b].To
	})
	return out, nil
}

func sortRules(rs []Rule) {
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].Estimate != rs[b].Estimate {
			return rs[a].Estimate > rs[b].Estimate
		}
		if rs[a].From != rs[b].From {
			return rs[a].From < rs[b].From
		}
		return rs[a].To < rs[b].To
	})
}
