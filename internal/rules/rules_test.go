package rules

import (
	"math"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
)

// caviarFixture builds the paper's motivating scenario: two rare items
// ("caviar", "vodka") almost always bought together, drowned in
// high-support noise items.
func caviarFixture(rng *hashing.SplitMix64, rows int) (*matrix.Matrix, int, int) {
	const caviar, vodka = 0, 1
	b := matrix.NewBuilder(rows, 6)
	for r := 0; r < rows; r++ {
		if rng.Float64() < 0.01 { // rare basket
			b.Set(r, caviar)
			b.Set(r, vodka)
		}
		for c := 2; c < 6; c++ {
			if rng.Float64() < 0.3 {
				b.Set(r, c)
			}
		}
	}
	return b.Build(), caviar, vodka
}

func TestOptionsValidate(t *testing.T) {
	sig := &minhash.Signatures{K: 1, M: 1, Vals: []uint64{1}}
	for _, o := range []Options{{MinConfidence: 0}, {MinConfidence: 1.5}, {MinConfidence: 0.5, MinAgreement: -1}} {
		if _, err := Candidates(sig, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
}

func TestCandidatesFindRareHighConfidenceRule(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	m, caviar, vodka := caviarFixture(rng, 5000)
	if m.Confidence(caviar, vodka) < 0.99 {
		t.Fatalf("fixture confidence %v too low", m.Confidence(caviar, vodka))
	}
	sig, err := minhash.Compute(m.Stream(), 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	cand, err := Candidates(sig, Options{MinConfidence: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range cand {
		if int(r.From) == caviar && int(r.To) == vodka {
			found = true
			if r.Estimate < 0.7 {
				t.Errorf("estimate %v below threshold", r.Estimate)
			}
		}
	}
	if !found {
		t.Error("caviar => vodka not found despite conf ≈ 1")
	}
}

// TestConfidenceEstimatorStatistics: the ratio estimator must converge
// to the true confidence as k grows.
func TestConfidenceEstimatorStatistics(t *testing.T) {
	rng := hashing.NewSplitMix64(2)
	b := matrix.NewBuilder(400, 2)
	// C0 ⊂ C1 mostly: conf(0=>1) ≈ 0.8, conf(1=>0) lower.
	for r := 0; r < 400; r++ {
		u := rng.Float64()
		if u < 0.10 {
			b.Set(r, 0)
			b.Set(r, 1)
		} else if u < 0.125 {
			b.Set(r, 0)
		} else if u < 0.35 {
			b.Set(r, 1)
		}
	}
	m := b.Build()
	truth := m.Confidence(0, 1)
	sig, _ := minhash.Compute(m.Stream(), 4000, 9)
	cand, err := Candidates(sig, Options{MinConfidence: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var est float64
	for _, r := range cand {
		if r.From == 0 && r.To == 1 {
			est = r.Estimate
		}
	}
	if math.Abs(est-truth) > 0.1 {
		t.Errorf("confidence estimate %v, truth %v", est, truth)
	}
}

func TestHighConfidenceCandidates(t *testing.T) {
	rng := hashing.NewSplitMix64(3)
	m, caviar, vodka := caviarFixture(rng, 3000)
	sig, _ := minhash.Compute(m.Stream(), 80, 11)
	sizes := make([]int, m.NumCols())
	for c := range sizes {
		sizes[c] = m.ColumnSize(c)
	}
	cand, err := HighConfidenceCandidates(sig, sizes, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range cand {
		if int(r.From) == caviar && int(r.To) == vodka {
			found = true
		}
	}
	if !found {
		t.Error("near-identical rare pair missed by conf≈1 shortcut")
	}
	// Validation paths.
	if _, err := HighConfidenceCandidates(sig, sizes[:2], 0.9, 0.1); err == nil {
		t.Error("wrong colSizes length accepted")
	}
	if _, err := HighConfidenceCandidates(sig, sizes, 0, 0.1); err == nil {
		t.Error("minConf 0 accepted")
	}
	if _, err := HighConfidenceCandidates(sig, sizes, 0.9, 1); err == nil {
		t.Error("tol 1 accepted")
	}
}

func TestVerifyComputesExactConfidence(t *testing.T) {
	m := matrix.MustNew(5, [][]int32{
		{0, 1, 2},    // C0
		{0, 1, 2, 3}, // C1 ⊇ C0
		{4},
	})
	cand := []Rule{
		{From: 0, To: 1, Estimate: 0.9},
		{From: 1, To: 0, Estimate: 0.9},
		{From: 0, To: 2, Estimate: 0.9},
	}
	out, err := Verify(m.Stream(), cand, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("verified rules = %+v", out)
	}
	if out[0].From != 0 || out[0].To != 1 || out[0].Exact != 1 {
		t.Errorf("rule 0 = %+v, want 0=>1 conf 1", out[0])
	}
	if out[1].From != 1 || out[1].To != 0 || math.Abs(out[1].Exact-0.75) > 1e-12 {
		t.Errorf("rule 1 = %+v, want 1=>0 conf 0.75", out[1])
	}
}

func TestVerifyValidation(t *testing.T) {
	m := matrix.MustNew(2, [][]int32{{0}, {1}})
	if _, err := Verify(m.Stream(), []Rule{{From: 0, To: 0}}, 0.5); err == nil {
		t.Error("self rule accepted")
	}
	if _, err := Verify(m.Stream(), []Rule{{From: 0, To: 9}}, 0.5); err == nil {
		t.Error("out-of-range rule accepted")
	}
	if _, err := Verify(m.Stream(), nil, 0); err == nil {
		t.Error("minConf 0 accepted")
	}
}

func TestVerifyDeduplicatesRules(t *testing.T) {
	m := matrix.MustNew(3, [][]int32{{0, 1}, {0, 1, 2}})
	cand := []Rule{
		{From: 0, To: 1}, {From: 0, To: 1}, {From: 0, To: 1},
	}
	out, err := Verify(m.Stream(), cand, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("duplicated rule verified %d times", len(out))
	}
}

func TestEndToEndPipeline(t *testing.T) {
	rng := hashing.NewSplitMix64(4)
	m, caviar, vodka := caviarFixture(rng, 4000)
	sig, _ := minhash.Compute(m.Stream(), 120, 13)
	cand, err := Candidates(sig, Options{MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	verified, err := Verify(m.Stream(), cand, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range verified {
		if int(r.From) == caviar && int(r.To) == vodka {
			found = true
			want := m.Confidence(caviar, vodka)
			if math.Abs(r.Exact-want) > 1e-12 {
				t.Errorf("exact conf %v, want %v", r.Exact, want)
			}
		}
		if r.Exact < 0.9 {
			t.Errorf("verified rule %+v below threshold", r)
		}
	}
	if !found {
		t.Error("pipeline lost the caviar => vodka rule")
	}
}
