package serve

import (
	"container/list"
	"encoding/json"
	"net/http"
	"sync"
)

// responseCache is a bounded LRU over rendered 200 responses to the
// read-only query endpoints. Entries are keyed by (index generation,
// endpoint, canonical request), where the generation is the *index
// pointer itself: a Refresh swaps in a new pointer, so a stale entry
// can never match a post-refresh lookup — the explicit purge on
// refresh only releases the memory early. The canonical request is
// the decoded struct re-marshalled, so bodies that differ in field
// order, whitespace or number spelling share an entry.
type responseCache struct {
	// mu is the only lock: lookups mutate LRU order, so a read lock
	// would not do. The guarded work is a map probe and a list splice,
	// far below the cost of the queries being saved.
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[cacheKey]*list.Element
}

type cacheKey struct {
	gen      *index
	endpoint string
	body     string
}

type cacheEntry struct {
	key  cacheKey
	resp []byte
}

func newResponseCache(capacity int) *responseCache {
	return &responseCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[cacheKey]*list.Element),
	}
}

func (c *responseCache) get(k cacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

func (c *responseCache) put(k cacheKey, resp []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).resp = resp
		return
	}
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, resp: resp})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

func (c *responseCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.entries)
}

func (c *responseCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheCheck consults the response cache for a decoded, validated
// request. On a hit it writes the stored response and reports done.
// On a miss it returns the key the handler's eventual 200 should be
// stored under; a nil key means the response is uncacheable (caching
// disabled).
func (s *Server) cacheCheck(w http.ResponseWriter, ix *index, endpoint string, req any) (done bool, key *cacheKey) {
	if s.cache == nil {
		return false, nil
	}
	canon, err := json.Marshal(req)
	if err != nil {
		return false, nil
	}
	k := cacheKey{gen: ix, endpoint: endpoint, body: string(canon)}
	if resp, ok := s.cache.get(k); ok {
		s.coll.Add("cache_hits", 1)
		writeRawJSON(w, resp)
		return true, nil
	}
	s.coll.Add("cache_misses", 1)
	return false, &k
}

// writeCachedJSON renders v once, stores the bytes under key when
// cacheCheck returned one, and writes the 200. Marshal plus a newline
// produces exactly what writeJSON's Encoder emits, so cached and
// computed responses are byte-identical.
func (s *Server) writeCachedJSON(w http.ResponseWriter, key *cacheKey, v any) *httpError {
	buf, err := json.Marshal(v)
	if err != nil {
		return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	buf = append(buf, '\n')
	if key != nil {
		s.cache.put(*key, buf)
	}
	writeRawJSON(w, buf)
	return nil
}

func writeRawJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}
