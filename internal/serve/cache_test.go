package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"assocmine"
)

func TestResponseCacheLRU(t *testing.T) {
	c := newResponseCache(2)
	gen := &index{}
	key := func(i int) cacheKey {
		return cacheKey{gen: gen, endpoint: "pairs", body: fmt.Sprintf("{%d}", i)}
	}
	c.put(key(1), []byte("one"))
	c.put(key(2), []byte("two"))
	if _, ok := c.get(key(1)); !ok {
		t.Fatal("entry 1 missing")
	}
	// 1 was just used, so inserting 3 must evict 2.
	c.put(key(3), []byte("three"))
	if _, ok := c.get(key(2)); ok {
		t.Fatal("entry 2 survived eviction")
	}
	if v, ok := c.get(key(1)); !ok || string(v) != "one" {
		t.Fatalf("entry 1: %q, %v", v, ok)
	}
	// Re-putting an existing key updates in place, no eviction.
	c.put(key(1), []byte("uno"))
	if v, _ := c.get(key(1)); string(v) != "uno" {
		t.Fatalf("entry 1 not updated: %q", v)
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	c.purge()
	if c.len() != 0 {
		t.Fatalf("len %d after purge", c.len())
	}
	if _, ok := c.get(key(1)); ok {
		t.Fatal("entry survived purge")
	}
	// Keys from another generation never collide.
	c.put(key(1), []byte("one"))
	other := cacheKey{gen: &index{}, endpoint: "pairs", body: "{1}"}
	if _, ok := c.get(other); ok {
		t.Fatal("cross-generation hit")
	}
}

func counters(s *Server) (hits, misses int64) {
	snap := s.Collector().Snapshot()
	return snap.Counters["cache_hits"], snap.Counters["cache_misses"]
}

// TestCacheHitsAcrossEquivalentBodies locks the canonicalisation: the
// same logical request, spelled differently on the wire, must be one
// cache entry, and the cached bytes must equal the computed bytes.
func TestCacheHitsAcrossEquivalentBodies(t *testing.T) {
	s := mustServer(t, testDataset(t, 200, 24))
	bodies := []string{
		`{"threshold":0.7}`,
		`{ "threshold" : 0.70 }`,
		`{"threshold":7e-1}`,
	}
	var first []byte
	for i, body := range bodies {
		rr := recordPost(s.Handler(), "/v1/pairs", body)
		if rr.Code != http.StatusOK {
			t.Fatalf("body %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
		if i == 0 {
			first = rr.Body.Bytes()
		} else if !bytes.Equal(rr.Body.Bytes(), first) {
			t.Fatalf("body %d: cached response differs:\n got %s\nwant %s", i, rr.Body.Bytes(), first)
		}
	}
	hits, misses := counters(s)
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", hits, misses)
	}
	// A different request is its own entry.
	if rr := recordPost(s.Handler(), "/v1/pairs", `{"threshold":0.8}`); rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	hits, misses = counters(s)
	if hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d after distinct request, want 2/2", hits, misses)
	}
}

// TestCacheCoversReadOnlyEndpoints repeats one request per cacheable
// endpoint and expects exactly one miss then one hit for each.
func TestCacheCoversReadOnlyEndpoints(t *testing.T) {
	s := mustServer(t, testDataset(t, 200, 24))
	reqs := []struct{ path, body string }{
		{"/v1/pairs", `{"threshold":0.7}`},
		{"/v1/topk", `{"col":2,"k":5}`},
		{"/v1/toppairs", `{"n":4,"floor":0.6}`},
		{"/v1/rules", `{"min_confidence":0.9}`},
		{"/v1/expr", `{"op":"cardinality","expr":"0|1"}`},
	}
	for _, q := range reqs {
		a := recordPost(s.Handler(), q.path, q.body)
		b := recordPost(s.Handler(), q.path, q.body)
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("%s: status %d/%d", q.path, a.Code, b.Code)
		}
		if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
			t.Fatalf("%s: cached response differs", q.path)
		}
	}
	hits, misses := counters(s)
	if hits != int64(len(reqs)) || misses != int64(len(reqs)) {
		t.Fatalf("hits=%d misses=%d, want %d/%d", hits, misses, len(reqs), len(reqs))
	}
}

func TestCacheDisabled(t *testing.T) {
	s, err := New(testDataset(t, 100, 16), Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if rr := recordPost(s.Handler(), "/v1/pairs", `{"threshold":0.7}`); rr.Code != http.StatusOK {
			t.Fatalf("status %d", rr.Code)
		}
	}
	hits, misses := counters(s)
	if hits != 0 || misses != 0 {
		t.Fatalf("hits=%d misses=%d with cache disabled", hits, misses)
	}
}

// refreshableServer builds a file-backed server over the first 300
// rows of the 400-row test dataset, returning the path and the full
// row set so tests can grow the file.
func refreshableServer(t *testing.T, opts Options) (*Server, string, [][]int) {
	t.Helper()
	const cols = 24
	rows := testRows(400, cols)
	path := filepath.Join(t.TempDir(), "data.txt")
	prefix, err := assocmine.NewDatasetFromRows(cols, rows[:300])
	if err != nil {
		t.Fatal(err)
	}
	if err := prefix.Save(path); err != nil {
		t.Fatal(err)
	}
	s, err := NewFromFile(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, path, rows
}

func growFile(t *testing.T, path string, rows [][]int, cols int) {
	t.Helper()
	full, err := assocmine.NewDatasetFromRows(cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Save(path); err != nil {
		t.Fatal(err)
	}
}

// TestCacheInvalidatedOnRefresh: a refresh that folds new rows swaps
// the index generation, so the same request recomputes (a miss) and
// reflects the grown dataset.
func TestCacheInvalidatedOnRefresh(t *testing.T) {
	s, path, rows := refreshableServer(t, Options{})
	const body = `{"threshold":0.7}`
	a := recordPost(s.Handler(), "/v1/pairs", body)
	b := recordPost(s.Handler(), "/v1/pairs", body)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("status %d/%d", a.Code, b.Code)
	}
	if hits, misses := counters(s); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d before refresh", hits, misses)
	}
	if s.cache.len() == 0 {
		t.Fatal("nothing cached")
	}
	growFile(t, path, rows, 24)
	if rr := recordPost(s.Handler(), "/v1/refresh", `{}`); rr.Code != http.StatusOK {
		t.Fatalf("refresh: %d: %s", rr.Code, rr.Body.String())
	}
	if s.cache.len() != 0 {
		t.Fatalf("%d entries survived refresh", s.cache.len())
	}
	c := recordPost(s.Handler(), "/v1/pairs", body)
	if c.Code != http.StatusOK {
		t.Fatalf("status %d", c.Code)
	}
	if hits, misses := counters(s); hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d after refresh, want 1/2", hits, misses)
	}
	// The post-refresh answer must match a fresh server over the full
	// data — i.e. the cache did not serve the stale generation.
	cols := 24
	full, err := assocmine.NewDatasetFromRows(cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	want := recordPost(mustServer(t, full).Handler(), "/v1/pairs", body)
	if !bytes.Equal(c.Body.Bytes(), want.Body.Bytes()) {
		t.Fatalf("post-refresh response differs from fresh server:\n got %s\nwant %s",
			c.Body.Bytes(), want.Body.Bytes())
	}
}

// TestRefreshInterval: the self-refresh poller notices the backing
// file growing and folds the rows in without any /v1/refresh call;
// Shutdown stops the poller cleanly.
func TestRefreshInterval(t *testing.T) {
	s, path, rows := refreshableServer(t, Options{RefreshInterval: 10 * time.Millisecond})
	t.Cleanup(func() { s.stopRefresher() })
	if s.refreshStop == nil {
		t.Fatal("refresher not started")
	}
	growFile(t, path, rows, 24)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if rows := s.index().data.NumRows(); rows == 400 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("poller never refreshed; rows still %d", rows)
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.stopRefresher()
	select {
	case <-s.refreshDone:
	default:
		t.Fatal("refresher still running after stop")
	}
}

// TestRefreshIntervalStatic: a static server ignores RefreshInterval.
func TestRefreshIntervalStatic(t *testing.T) {
	s, err := New(testDataset(t, 100, 16), Options{RefreshInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if s.refreshStop != nil {
		t.Fatal("static server started a refresher")
	}
}
