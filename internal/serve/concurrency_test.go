package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"assocmine"
	"assocmine/internal/testutil"
)

// TestConcurrentQueriesBitIdentical is the headline concurrency test:
// 32 client goroutines hammer a real HTTP listener with a mix of every
// query type, and every single response must be byte-identical to the
// direct single-threaded library computation. Run under -race this
// also proves the resident indexes are shared safely. The goroutine
// leak check covers the listener, the connection pool and the drain
// path.
func TestConcurrentQueriesBitIdentical(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := mustServer(t, testDataset(t, 400, 48))
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cases := libraryCases(t, s)

	tr := &http.Transport{MaxIdleConnsPerHost: 64}
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}
	t.Cleanup(tr.CloseIdleConnections)

	const workers = 32
	const iters = 6
	var wg sync.WaitGroup
	errc := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c := cases[(w+i)%len(cases)]
				resp, err := client.Post("http://"+addr.String()+c.path, "application/json", strings.NewReader(c.body))
				if err != nil {
					errc <- fmt.Errorf("%s: %w", c.name, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- fmt.Errorf("%s: reading body: %w", c.name, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s: status %d: %s", c.name, resp.StatusCode, body)
					return
				}
				if !bytes.Equal(body, c.want) {
					errc <- fmt.Errorf("%s: concurrent response differs from library:\n got %s\nwant %s", c.name, body, c.want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if got := s.Queries(); got != workers*iters {
		t.Errorf("query counter %d, want %d", got, workers*iters)
	}
	if got := s.Inflight(); got != 0 {
		t.Errorf("%d queries still in flight after all clients returned", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Post-shutdown queries are refused, not hung.
	rr := recordPost(s.Handler(), "/v1/pairs", `{"threshold":0.7}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %d, want 503", rr.Code)
	}
}

// TestThousandConcurrentInflight holds 1000 queries in flight
// simultaneously — deterministically, via the query gate — and then
// releases them all at once. Every response must still be
// byte-identical to the library answer, the in-flight gauge must hit
// exactly 1000, and nothing may leak.
func TestThousandConcurrentInflight(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := mustServer(t, testDataset(t, 200, 32))

	ix := s.index()
	plan, err := choosePlan(0.7, ix.info(), "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := runPlan(ix, plan, assocmine.Config{Seed: s.opts.Seed, Workers: 1, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	want := mustBody(t, PairsResponse{Plan: plan, Count: len(res.Pairs), Pairs: toPairJSON(res.Pairs)})

	release := make(chan struct{})
	s.queryGate = func(string) { <-release }

	const n = 1000
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/v1/pairs", strings.NewReader(`{"threshold":0.7}`))
			s.Handler().ServeHTTP(rr, req)
			recs[i] = rr
		}(i)
	}

	deadline := time.Now().Add(30 * time.Second)
	for s.Inflight() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d queries in flight", s.Inflight(), n)
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.Inflight(); got != n {
		t.Fatalf("in-flight gauge %d, want exactly %d", got, n)
	}
	close(release)
	wg.Wait()

	for i, rr := range recs {
		if rr.Code != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
		if !bytes.Equal(rr.Body.Bytes(), want) {
			t.Fatalf("query %d: response differs from library answer", i)
		}
	}
	if got := s.Queries(); got != n {
		t.Errorf("query counter %d, want %d", got, n)
	}
	if got := s.Inflight(); got != 0 {
		t.Errorf("%d queries still in flight", got)
	}
}

// TestShutdownDrains holds one query in the gate, starts Shutdown, and
// checks the ordering guarantees: shutdown blocks until the query
// completes, new queries get 503 while draining, and the held query
// still gets its full, correct answer.
func TestShutdownDrains(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := mustServer(t, testDataset(t, 100, 16))
	entered := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	// Only the first query blocks in the gate (a CAS, not a sync.Once —
	// Once would hold its mutex while blocked and deadlock any query
	// that races in behind it).
	s.queryGate = func(string) {
		if first.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}

	var held *httptest.ResponseRecorder
	done := make(chan struct{})
	go func() {
		defer close(done)
		held = recordPost(s.Handler(), "/v1/pairs", `{"threshold":0.7}`)
	}()
	<-entered

	shut := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shut <- s.Shutdown(ctx)
	}()

	// Draining must refuse new queries while the held one is in flight.
	refusedDeadline := time.Now().Add(5 * time.Second)
	for {
		rr := recordPost(s.Handler(), "/v1/pairs", `{"threshold":0.7}`)
		if rr.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(refusedDeadline) {
			t.Fatalf("draining server still accepting queries (status %d)", rr.Code)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-shut:
		t.Fatalf("shutdown returned (%v) with a query still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	<-done
	if err := <-shut; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if held.Code != http.StatusOK {
		t.Fatalf("held query status %d: %s", held.Code, held.Body.String())
	}
	// /healthz reports draining after shutdown.
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d after shutdown, want 503", rr.Code)
	}
}

// TestRefreshUnderConcurrentQueries exercises the hot-refresh path: a
// file-backed server keeps answering queries while the backing file
// grows and /v1/refresh folds the new rows in. After the refresh, the
// server's answers must be byte-identical to a fresh server built over
// the full dataset (the ingest catch-up path is bit-identical to batch
// computation).
func TestRefreshUnderConcurrentQueries(t *testing.T) {
	testutil.CheckGoroutines(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "data.txt")
	const cols = 32
	rows := testRows(500, cols)

	prefix, err := assocmine.NewDatasetFromRows(cols, rows[:400])
	if err != nil {
		t.Fatal(err)
	}
	if err := prefix.Save(path); err != nil {
		t.Fatal(err)
	}
	s, err := NewFromFile(path, Options{
		SnapshotMH:  filepath.Join(dir, "mh.ain"),
		SnapshotKMH: filepath.Join(dir, "kmh.ain"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.index().data.NumRows(); got != 400 {
		t.Fatalf("initial rows %d, want 400", got)
	}

	// Background queriers run across the refresh; they only assert
	// success, since answers legitimately change mid-swap.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rr := recordPost(s.Handler(), "/v1/pairs", `{"threshold":0.7}`)
				if rr.Code != http.StatusOK {
					t.Errorf("query during refresh: status %d: %s", rr.Code, rr.Body.String())
					return
				}
			}
		}()
	}

	full, err := assocmine.NewDatasetFromRows(cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Save(path); err != nil {
		t.Fatal(err)
	}
	rr := recordPost(s.Handler(), "/v1/refresh", `{}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("refresh: status %d: %s", rr.Code, rr.Body.String())
	}
	var ref RefreshResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &ref); err != nil {
		t.Fatal(err)
	}
	if ref.NewRows != 100 || ref.Rows != 500 {
		t.Fatalf("refresh folded %d rows to %d total, want 100 to 500", ref.NewRows, ref.Rows)
	}
	close(stop)
	wg.Wait()

	// A second refresh with nothing new is a no-op.
	rr = recordPost(s.Handler(), "/v1/refresh", `{}`)
	var ref2 RefreshResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &ref2); err != nil {
		t.Fatal(err)
	}
	if ref2.NewRows != 0 {
		t.Fatalf("idle refresh folded %d rows, want 0", ref2.NewRows)
	}

	// The refreshed server answers exactly like a fresh one.
	fresh := mustServer(t, full)
	for _, body := range []string{
		`{"threshold":0.7}`,
		`{"threshold":0.3}`,
	} {
		got := recordPost(s.Handler(), "/v1/pairs", body)
		want := recordPost(fresh.Handler(), "/v1/pairs", body)
		if got.Code != http.StatusOK || want.Code != http.StatusOK {
			t.Fatalf("status %d / %d for %s", got.Code, want.Code, body)
		}
		if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
			t.Fatalf("refreshed server diverges from fresh server for %s:\n got %s\nwant %s",
				body, got.Body.Bytes(), want.Body.Bytes())
		}
	}

	// A restart resuming the snapshots folds nothing and answers the same.
	resumed, err := NewFromFile(path, Options{
		SnapshotMH:  filepath.Join(dir, "mh.ain"),
		SnapshotKMH: filepath.Join(dir, "kmh.ain"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := recordPost(resumed.Handler(), "/v1/pairs", `{"threshold":0.7}`)
	want := recordPost(fresh.Handler(), "/v1/pairs", `{"threshold":0.7}`)
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Fatal("snapshot-resumed server diverges from fresh server")
	}
}
