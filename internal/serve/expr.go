package serve

import (
	"fmt"

	"assocmine"
)

// Limits on hostile expression strings. Parsing is O(len) and the
// node/depth caps bound both the parse tree and the downstream
// inclusion-exclusion work, so a malicious request cannot make the
// decoder allocate unboundedly.
const (
	maxExprLen   = 4096
	maxExprNodes = 1024
	maxExprDepth = 64
)

// ParseExpr parses the compact boolean-expression syntax used by the
// /v1/expr endpoint into an assocmine.BoolExpr. Grammar:
//
//	expr := or
//	or   := and { '|' and }
//	and  := atom { '&' atom }
//	atom := INT | 'col(' expr ')' | 'any(' expr {',' expr} ')'
//	      | 'all(' expr {',' expr} ')' | '(' expr ')'
//
// Bare integers are column ids ("3|4&5" works); the function forms
// mirror the Go API ("all(3, any(4, 5))"). Column ids must lie in
// [0, numCols). Structural rules (conjunctions under disjunctions,
// And fan-in) are enforced later by the evaluator; the parser only
// enforces syntax and the anti-hostility caps above.
func ParseExpr(s string, numCols int) (assocmine.BoolExpr, error) {
	if len(s) > maxExprLen {
		return assocmine.BoolExpr{}, fmt.Errorf("expression longer than %d bytes", maxExprLen)
	}
	p := &exprParser{s: s, numCols: numCols}
	e, err := p.parseOr(0)
	if err != nil {
		return assocmine.BoolExpr{}, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return assocmine.BoolExpr{}, fmt.Errorf("unexpected %q at offset %d", p.s[p.pos], p.pos)
	}
	return e, nil
}

type exprParser struct {
	s       string
	pos     int
	nodes   int
	numCols int
}

func (p *exprParser) node() error {
	p.nodes++
	if p.nodes > maxExprNodes {
		return fmt.Errorf("expression exceeds %d nodes", maxExprNodes)
	}
	return nil
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n' || p.s[p.pos] == '\r') {
		p.pos++
	}
}

// eat consumes c if it is next (after spaces) and reports whether it did.
func (p *exprParser) eat(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *exprParser) parseOr(depth int) (assocmine.BoolExpr, error) {
	if depth > maxExprDepth {
		return assocmine.BoolExpr{}, fmt.Errorf("expression deeper than %d levels", maxExprDepth)
	}
	first, err := p.parseAnd(depth + 1)
	if err != nil {
		return assocmine.BoolExpr{}, err
	}
	args := []assocmine.BoolExpr{first}
	for p.eat('|') {
		next, err := p.parseAnd(depth + 1)
		if err != nil {
			return assocmine.BoolExpr{}, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return first, nil
	}
	if err := p.node(); err != nil {
		return assocmine.BoolExpr{}, err
	}
	return assocmine.AnyOf(args...), nil
}

func (p *exprParser) parseAnd(depth int) (assocmine.BoolExpr, error) {
	if depth > maxExprDepth {
		return assocmine.BoolExpr{}, fmt.Errorf("expression deeper than %d levels", maxExprDepth)
	}
	first, err := p.parseAtom(depth + 1)
	if err != nil {
		return assocmine.BoolExpr{}, err
	}
	args := []assocmine.BoolExpr{first}
	for p.eat('&') {
		next, err := p.parseAtom(depth + 1)
		if err != nil {
			return assocmine.BoolExpr{}, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return first, nil
	}
	if err := p.node(); err != nil {
		return assocmine.BoolExpr{}, err
	}
	return assocmine.AllOf(args...), nil
}

func (p *exprParser) parseAtom(depth int) (assocmine.BoolExpr, error) {
	if depth > maxExprDepth {
		return assocmine.BoolExpr{}, fmt.Errorf("expression deeper than %d levels", maxExprDepth)
	}
	p.skipSpace()
	if p.pos >= len(p.s) {
		return assocmine.BoolExpr{}, fmt.Errorf("unexpected end of expression at offset %d", p.pos)
	}
	switch c := p.s[p.pos]; {
	case c >= '0' && c <= '9':
		return p.parseCol()
	case c == '(':
		p.pos++
		e, err := p.parseOr(depth + 1)
		if err != nil {
			return assocmine.BoolExpr{}, err
		}
		if !p.eat(')') {
			return assocmine.BoolExpr{}, fmt.Errorf("missing ')' at offset %d", p.pos)
		}
		return e, nil
	default:
		name := p.parseIdent()
		switch name {
		case "col":
			if !p.eat('(') {
				return assocmine.BoolExpr{}, fmt.Errorf("col needs '(' at offset %d", p.pos)
			}
			e, err := p.parseCol()
			if err != nil {
				return assocmine.BoolExpr{}, err
			}
			if !p.eat(')') {
				return assocmine.BoolExpr{}, fmt.Errorf("missing ')' at offset %d", p.pos)
			}
			return e, nil
		case "any", "all":
			if !p.eat('(') {
				return assocmine.BoolExpr{}, fmt.Errorf("%s needs '(' at offset %d", name, p.pos)
			}
			var args []assocmine.BoolExpr
			for {
				e, err := p.parseOr(depth + 1)
				if err != nil {
					return assocmine.BoolExpr{}, err
				}
				args = append(args, e)
				if p.eat(',') {
					continue
				}
				break
			}
			if !p.eat(')') {
				return assocmine.BoolExpr{}, fmt.Errorf("missing ')' at offset %d", p.pos)
			}
			if err := p.node(); err != nil {
				return assocmine.BoolExpr{}, err
			}
			if name == "any" {
				return assocmine.AnyOf(args...), nil
			}
			return assocmine.AllOf(args...), nil
		case "":
			return assocmine.BoolExpr{}, fmt.Errorf("unexpected %q at offset %d", c, p.pos)
		default:
			return assocmine.BoolExpr{}, fmt.Errorf("unknown function %q (want col, any or all)", name)
		}
	}
}

func (p *exprParser) parseIdent() string {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c >= 'a' && c <= 'z' {
			p.pos++
			continue
		}
		break
	}
	return p.s[start:p.pos]
}

func (p *exprParser) parseCol() (assocmine.BoolExpr, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return assocmine.BoolExpr{}, fmt.Errorf("expected column id at offset %d", start)
	}
	if p.pos-start > 9 {
		return assocmine.BoolExpr{}, fmt.Errorf("column id at offset %d too long", start)
	}
	n := 0
	for _, c := range []byte(p.s[start:p.pos]) {
		n = n*10 + int(c-'0')
	}
	if n >= p.numCols {
		return assocmine.BoolExpr{}, fmt.Errorf("column %d out of range [0,%d)", n, p.numCols)
	}
	if err := p.node(); err != nil {
		return assocmine.BoolExpr{}, err
	}
	return assocmine.Col(n), nil
}
