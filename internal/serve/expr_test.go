package serve

import (
	"strings"
	"testing"

	"assocmine"
)

// exprEval is a tiny shared evaluator for checking that parsed
// expressions evaluate like their hand-built Go counterparts.
func exprEval(t *testing.T) *assocmine.ExprEvaluator {
	t.Helper()
	d := testDataset(t, 120, 16)
	ev, err := assocmine.NewExprEvaluator(d, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestParseExprMatchesBuilders(t *testing.T) {
	ev := exprEval(t)
	cases := []struct {
		src  string
		want assocmine.BoolExpr
	}{
		{"3", assocmine.Col(3)},
		{"col(3)", assocmine.Col(3)},
		{" 3 | 4 ", assocmine.AnyOf(assocmine.Col(3), assocmine.Col(4))},
		{"any(3, 4)", assocmine.AnyOf(assocmine.Col(3), assocmine.Col(4))},
		{"3&4", assocmine.AllOf(assocmine.Col(3), assocmine.Col(4))},
		{"all(3, 4)", assocmine.AllOf(assocmine.Col(3), assocmine.Col(4))},
		{"all(3, any(4, 5))", assocmine.AllOf(assocmine.Col(3), assocmine.AnyOf(assocmine.Col(4), assocmine.Col(5)))},
		{"3 & (4 | 5)", assocmine.AllOf(assocmine.Col(3), assocmine.AnyOf(assocmine.Col(4), assocmine.Col(5)))},
		{"(3)", assocmine.Col(3)},
		{"0|1|2&3", assocmine.AnyOf(assocmine.Col(0), assocmine.Col(1), assocmine.AllOf(assocmine.Col(2), assocmine.Col(3)))},
	}
	for _, c := range cases {
		t.Run(c.src, func(t *testing.T) {
			got, err := ParseExpr(c.src, 16)
			if err != nil {
				t.Fatal(err)
			}
			// BoolExpr hides its tree; equality via evaluated cardinality.
			// (Cardinality is deterministic for a fixed sketch, so equal
			// trees give equal values; combined with the error cases below
			// this pins the parse shape.)
			gv, gerr := ev.Cardinality(got)
			wv, werr := ev.Cardinality(c.want)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("evaluability mismatch: %v vs %v", gerr, werr)
			}
			if gerr == nil && gv != wv {
				t.Fatalf("cardinality %v, want %v", gv, wv)
			}
		})
	}
}

func TestParseExprErrors(t *testing.T) {
	bad := []string{
		"",
		"|",
		"3|",
		"&3",
		"3 4",
		"(3",
		"3)",
		"col()",
		"col(x)",
		"any()",
		"any(3,)",
		"frob(3)",
		"16",         // out of range for numCols=16
		"9999999999", // id longer than 9 digits
		"3 && 4",
		"col(3",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src, 16); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error", src)
		}
	}
}

func TestParseExprHostileInputs(t *testing.T) {
	t.Run("too-long", func(t *testing.T) {
		src := "0" + strings.Repeat("|0", maxExprLen)
		if _, err := ParseExpr(src, 16); err == nil {
			t.Fatal("oversized expression accepted")
		}
	})
	t.Run("too-deep", func(t *testing.T) {
		src := strings.Repeat("(", 200) + "3" + strings.Repeat(")", 200)
		if _, err := ParseExpr(src, 16); err == nil {
			t.Fatal("deeply nested expression accepted")
		}
	})
	t.Run("too-many-nodes", func(t *testing.T) {
		src := "0" + strings.Repeat("|1", maxExprNodes+1)
		if _, err := ParseExpr(src, 16); err == nil {
			t.Fatal("expression with too many nodes accepted")
		}
	})
	t.Run("depth-within-cap-parses", func(t *testing.T) {
		src := strings.Repeat("(", 10) + "3" + strings.Repeat(")", 10)
		if _, err := ParseExpr(src, 16); err != nil {
			t.Fatalf("modest nesting rejected: %v", err)
		}
	})
}
