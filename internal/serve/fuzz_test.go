package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"assocmine"
)

// fuzzServer is shared across fuzz iterations (each fuzz worker is its
// own process, so this is built once per worker, not per input).
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzServer(tb testing.TB) *Server {
	fuzzOnce.Do(func() {
		d, err := assocmine.NewDatasetFromRows(16, testRows(120, 16))
		if err != nil {
			tb.Fatal(err)
		}
		fuzzSrv, err = New(d, Options{SigK: 40, SketchK: 32})
		if err != nil {
			tb.Fatal(err)
		}
	})
	return fuzzSrv
}

var fuzzPaths = []string{
	"/v1/pairs", "/v1/topk", "/v1/toppairs", "/v1/rules", "/v1/expr", "/v1/refresh",
}

// FuzzHTTPQuery throws arbitrary bytes at every endpoint's full decode
// + validate + execute path. The contract under hostile input: never
// panic, never hang, and answer malformed requests with a 4xx — the
// only non-4xx statuses allowed are 200 (the input happened to be a
// valid query) and the budget statuses 504/408 (the input set a tiny
// timeout_ms on a real query).
func FuzzHTTPQuery(f *testing.F) {
	seeds := []string{
		`{"threshold":0.7}`,
		`{"threshold":0.7,"algo":"mlsh","timeout_ms":1000,"mem_budget":65536}`,
		`{"col":3,"k":5,"floor":0.2}`,
		`{"n":10,"floor":0.5,"algo":"kmh"}`,
		`{"min_confidence":0.9,"delta":0.2}`,
		`{"op":"cardinality","expr":"all(3, any(4, 5))"}`,
		`{"op":"similarity","a":"0|1","b":"2"}`,
		`{"op":"confidence","a":"col(0)","b":"1"}`,
		`{}`,
		`{"threshold":1e999}`,
		`{"threshold":0.7,"unknown":"field"}`,
		`{"op":"cardinality","expr":"((((((0))))))"}`,
		"not json at all",
		`[1,2,3]`,
		`{"threshold":0.7}{"threshold":0.8}`,
	}
	for _, s := range seeds {
		for sel := range fuzzPaths {
			f.Add([]byte(s), byte(sel))
		}
	}
	f.Fuzz(func(t *testing.T, body []byte, sel byte) {
		s := fuzzServer(t)
		path := fuzzPaths[int(sel)%len(fuzzPaths)]
		rr := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(body)))
		s.Handler().ServeHTTP(rr, req)
		switch {
		case rr.Code == http.StatusOK,
			rr.Code >= 400 && rr.Code < 500,
			rr.Code == http.StatusGatewayTimeout:
		default:
			t.Fatalf("%s: status %d for body %q: %s", path, rr.Code, body, rr.Body.String())
		}
	})
}

// FuzzParseExpr drives the expression parser, and every successfully
// parsed expression on through the evaluator: hostile strings must
// produce errors, never panics or unbounded work.
func FuzzParseExpr(f *testing.F) {
	seeds := []string{
		"3", "col(3)", "3|4&5", "any(1, all(2, 3))", "((0))",
		"all(0,1,2,3,4,5,6,7,8,9,10,11,12,13)",
		strings.Repeat("(", 80) + "1" + strings.Repeat(")", 80),
		"9999999999", "col(", "a&b", "|||",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src, 16)
		if err != nil {
			return
		}
		ev := fuzzServer(t).index().expr
		// Evaluation may reject (structural rules) but must not panic.
		_, _ = ev.Cardinality(e)
	})
}
