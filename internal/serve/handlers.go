package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"assocmine"
	"assocmine/internal/obs"
)

// defaultTopFloor bounds the descending top-k threshold search from
// below when the request sets no floor.
const defaultTopFloor = 0.05

// topStartThreshold is where the descending search starts (matches the
// library default).
const topStartThreshold = 0.9

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	obs.RegisterHTTP(mux, "assocserve", s.coll)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/v1/pairs", s.endpoint("pairs", s.handlePairs))
	mux.Handle("/v1/topk", s.endpoint("topk", s.handleTopK))
	mux.Handle("/v1/toppairs", s.endpoint("toppairs", s.handleTopPairs))
	mux.Handle("/v1/rules", s.endpoint("rules", s.handleRules))
	mux.Handle("/v1/expr", s.endpoint("expr", s.handleExpr))
	mux.Handle("/v1/refresh", s.endpoint("refresh", s.handleRefresh))
	return mux
}

// httpError is a handler failure: a status plus a client-safe message,
// serialised as ErrorResponse by the endpoint wrapper.
type httpError struct {
	status int
	msg    string
}

func badRequest(err error) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: err.Error()}
}

// queryFailure maps an execution error (after validation passed) to a
// status: budget exhaustion is the caller's 504, everything else a 500.
func queryFailure(err error) *httpError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &httpError{status: http.StatusGatewayTimeout, msg: "query exceeded its time budget"}
	case errors.Is(err, context.Canceled):
		return &httpError{status: http.StatusRequestTimeout, msg: "query canceled"}
	default:
		return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// endpoint wraps a query handler with the serving policy shared by
// every /v1 route: POST only, drain-aware in-flight registration,
// per-endpoint query/error counters and a latency span.
func (s *Server) endpoint(name string, h func(http.ResponseWriter, *http.Request) *httpError) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if !s.enter() {
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		defer s.leave()
		if s.queryGate != nil {
			s.queryGate(name)
		}
		s.coll.Add("queries_"+name, 1)
		start := time.Now()
		herr := h(w, r)
		s.coll.PhaseEnd("serve_"+name, time.Since(start))
		if herr != nil {
			s.coll.Add("query_errors", 1)
			writeError(w, herr.status, herr.msg)
		}
	})
}

// readBody decodes the request body strictly (size-capped, unknown
// fields and trailing data rejected).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, dst any) *httpError {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{status: http.StatusRequestEntityTooLarge, msg: err.Error()}
		}
		return badRequest(err)
	}
	if err := decodeRequest(body, dst); err != nil {
		return badRequest(err)
	}
	return nil
}

// runPlan executes a pair-style query against the index the plan
// selected.
func runPlan(ix *index, plan Plan, cfg assocmine.Config) (*assocmine.Result, error) {
	cfg.Algorithm = plan.Algorithm()
	switch plan.Kind {
	case PlanMLSHProbe:
		cfg.R, cfg.L = plan.R, plan.L
		return assocmine.SimilarPairsWithSignatures(ix.data, ix.sig, cfg)
	case PlanMHSort:
		return assocmine.SimilarPairsWithSignatures(ix.data, ix.sig, cfg)
	default:
		return assocmine.SimilarPairsWithSketches(ix.data, ix.sk, cfg)
	}
}

func toPairJSON(ps []assocmine.Pair) []PairJSON {
	out := make([]PairJSON, len(ps))
	for i, p := range ps {
		out[i] = PairJSON{I: p.I, J: p.J, Estimate: p.Estimate, Similarity: p.Similarity}
	}
	return out
}

func (s *Server) handlePairs(w http.ResponseWriter, r *http.Request) *httpError {
	var q PairsRequest
	if herr := s.readBody(w, r, &q); herr != nil {
		return herr
	}
	ix := s.index()
	if err := q.validate(ix.data.NumCols()); err != nil {
		return badRequest(err)
	}
	done, key := s.cacheCheck(w, ix, "pairs", &q)
	if done {
		return nil
	}
	plan, err := choosePlan(q.Threshold, ix.info(), q.Algo)
	if err != nil {
		return badRequest(err)
	}
	ctx, cancel := s.queryContext(r, q.TimeoutMS)
	defer cancel()
	cfg := s.queryConfig(ctx, q.MemBudget)
	cfg.Threshold = q.Threshold
	res, err := runPlan(ix, plan, cfg)
	if err != nil {
		return queryFailure(err)
	}
	return s.writeCachedJSON(w, key, PairsResponse{
		Plan:  plan,
		Count: len(res.Pairs),
		Pairs: toPairJSON(res.Pairs),
	})
}

// topConfig prepares the descending-search config shared by topk and
// toppairs: start at the standard threshold, or at the floor itself
// when the caller floors the search above it.
func topConfig(cfg assocmine.Config, floor float64) assocmine.Config {
	cfg.Threshold = topStartThreshold
	if floor > cfg.Threshold {
		cfg.Threshold = floor
	}
	return cfg
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) *httpError {
	var q TopKRequest
	if herr := s.readBody(w, r, &q); herr != nil {
		return herr
	}
	ix := s.index()
	if err := q.validate(ix.data.NumCols(), s.opts.MaxTopK); err != nil {
		return badRequest(err)
	}
	done, key := s.cacheCheck(w, ix, "topk", &q)
	if done {
		return nil
	}
	floor := q.Floor
	if floor == 0 {
		floor = defaultTopFloor
	}
	plan, err := choosePlan(floor, ix.info(), q.Algo)
	if err != nil {
		return badRequest(err)
	}
	ctx, cancel := s.queryContext(r, q.TimeoutMS)
	defer cancel()
	cfg := topConfig(s.queryConfig(ctx, q.MemBudget), floor)
	var pairs []assocmine.Pair
	if plan.Kind == PlanKMHScan {
		pairs, err = assocmine.TopColumnsWithSketches(ix.data, ix.sk, q.Col, q.K, cfg, floor)
	} else {
		cfg.Algorithm = plan.Algorithm()
		cfg.R, cfg.L = plan.R, plan.L
		pairs, err = assocmine.TopColumnsWithSignatures(ix.data, ix.sig, q.Col, q.K, cfg, floor)
	}
	if err != nil {
		return queryFailure(err)
	}
	nbrs := make([]NeighborJSON, len(pairs))
	for i, p := range pairs {
		other := p.I
		if other == q.Col {
			other = p.J
		}
		nbrs[i] = NeighborJSON{Col: other, Estimate: p.Estimate, Similarity: p.Similarity}
	}
	return s.writeCachedJSON(w, key, TopKResponse{Plan: plan, Col: q.Col, Neighbors: nbrs})
}

func (s *Server) handleTopPairs(w http.ResponseWriter, r *http.Request) *httpError {
	var q TopPairsRequest
	if herr := s.readBody(w, r, &q); herr != nil {
		return herr
	}
	ix := s.index()
	if err := q.validate(s.opts.MaxTopK); err != nil {
		return badRequest(err)
	}
	done, key := s.cacheCheck(w, ix, "toppairs", &q)
	if done {
		return nil
	}
	floor := q.Floor
	if floor == 0 {
		floor = defaultTopFloor
	}
	plan, err := choosePlan(floor, ix.info(), q.Algo)
	if err != nil {
		return badRequest(err)
	}
	ctx, cancel := s.queryContext(r, q.TimeoutMS)
	defer cancel()
	cfg := topConfig(s.queryConfig(ctx, q.MemBudget), floor)
	var pairs []assocmine.Pair
	if plan.Kind == PlanKMHScan {
		pairs, err = assocmine.TopPairsWithSketches(ix.data, ix.sk, q.N, cfg, floor)
	} else {
		cfg.Algorithm = plan.Algorithm()
		cfg.R, cfg.L = plan.R, plan.L
		pairs, err = assocmine.TopPairsWithSignatures(ix.data, ix.sig, q.N, cfg, floor)
	}
	if err != nil {
		return queryFailure(err)
	}
	return s.writeCachedJSON(w, key, PairsResponse{
		Plan:  plan,
		Count: len(pairs),
		Pairs: toPairJSON(pairs),
	})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) *httpError {
	var q RulesRequest
	if herr := s.readBody(w, r, &q); herr != nil {
		return herr
	}
	if err := q.validate(); err != nil {
		return badRequest(err)
	}
	ix := s.index()
	done, key := s.cacheCheck(w, ix, "rules", &q)
	if done {
		return nil
	}
	ctx, cancel := s.queryContext(r, q.TimeoutMS)
	defer cancel()
	res, err := assocmine.MineRulesWithSignatures(ix.data, ix.sig, assocmine.RuleConfig{
		MinConfidence: q.MinConfidence,
		Delta:         q.Delta,
		Seed:          s.opts.Seed,
		Context:       ctx,
	})
	if err != nil {
		return queryFailure(err)
	}
	rules := make([]RuleJSON, len(res.Rules))
	for i, rr := range res.Rules {
		rules[i] = RuleJSON{From: rr.From, To: rr.To, Estimate: rr.Estimate, Confidence: rr.Confidence}
	}
	return s.writeCachedJSON(w, key, RulesResponse{Count: len(rules), Rules: rules})
}

func (s *Server) handleExpr(w http.ResponseWriter, r *http.Request) *httpError {
	var q ExprRequest
	if herr := s.readBody(w, r, &q); herr != nil {
		return herr
	}
	if err := q.validate(); err != nil {
		return badRequest(err)
	}
	ix := s.index()
	done, key := s.cacheCheck(w, ix, "expr", &q)
	if done {
		return nil
	}
	cols := ix.expr.NumCols()
	var value float64
	switch q.Op {
	case "cardinality":
		e, err := ParseExpr(q.Expr, cols)
		if err != nil {
			return badRequest(err)
		}
		if value, err = ix.expr.Cardinality(e); err != nil {
			// Parses that pass syntax can still break the evaluator's
			// structural rules (And nesting, fan-in) — the request's
			// fault, not the server's.
			return badRequest(err)
		}
	case "similarity", "confidence":
		a, err := ParseExpr(q.A, cols)
		if err != nil {
			return badRequest(err)
		}
		b, err := ParseExpr(q.B, cols)
		if err != nil {
			return badRequest(err)
		}
		if q.Op == "similarity" {
			value, err = ix.expr.Similarity(a, b)
		} else {
			value, err = ix.expr.Confidence(a, b)
		}
		if err != nil {
			return badRequest(err)
		}
	}
	return s.writeCachedJSON(w, key, ExprResponse{Op: q.Op, Value: value})
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) *httpError {
	n, err := s.Refresh()
	if err != nil {
		if errors.Is(err, ErrStaticIndex) {
			return &httpError{status: http.StatusConflict, msg: err.Error()}
		}
		return queryFailure(err)
	}
	ix := s.index()
	writeJSON(w, http.StatusOK, RefreshResponse{
		NewRows: n,
		Rows:    ix.data.NumRows(),
		Queries: s.queries.Load(),
	})
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining"})
		return
	}
	ix := s.index()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Rows:     ix.data.NumRows(),
		Cols:     ix.data.NumCols(),
		SigK:     ix.sig.K(),
		SketchK:  ix.sk.K(),
		Queries:  s.queries.Load(),
		Inflight: s.inflightN.Load(),
	})
}
