// Package serve is the resident similarity service: it keeps a
// dataset's min-hash signatures and bottom-k sketches warm in memory
// (the paper's §1 design point — the signature index is O(mk) and
// memory-resident by design) and answers concurrent HTTP/JSON queries
// from them, so a query pays only the in-memory candidate phase plus
// one verification pass instead of a full CLI recomputation.
package serve

import (
	"fmt"
	"math"

	"assocmine"
)

// Plan kinds — which resident index a query runs against and how.
const (
	// PlanMLSHProbe answers from the min-hash signatures via M-LSH
	// banding (§4.1): hash each column's bands into buckets and probe
	// collisions. Cheapest when the threshold is high enough that the
	// banding catches true pairs reliably.
	PlanMLSHProbe = "mlsh-probe"
	// PlanKMHScan answers from the bottom-k sketches via the K-MH
	// hash-count scan (§3.2): merge-count sketch values across columns.
	// Works at any threshold and attaches unbiased estimates, at the
	// cost of touching every sketch.
	PlanKMHScan = "kmh-scan"
	// PlanMHSort answers from the min-hash signatures via Row-Sorting
	// (§3.1) — the signature-scan fallback when the threshold is too
	// low for banding and no bottom-k sketch is resident.
	PlanMHSort = "mh-sort"
)

// bandR is the band size the planner lays over resident signatures.
// R=5 is the paper's §4.1 working point: s^5 separates high from low
// similarity sharply while leaving K/5 bands for sensitivity.
const bandR = 5

// minDetect is the banding detection probability below which the
// planner refuses M-LSH: a probe that misses more than 10% of true
// pairs at the query threshold is not a serving-quality plan.
const minDetect = 0.9

// Plan is one query's execution choice, reported back to the client.
type Plan struct {
	// Kind is one of the Plan* constants.
	Kind string `json:"kind"`
	// R and L are the banding layout for PlanMLSHProbe (zero
	// otherwise).
	R int `json:"r,omitempty"`
	L int `json:"l,omitempty"`
	// Reason is the one-line heuristic justification.
	Reason string `json:"reason"`
}

// Algorithm returns the assocmine algorithm the plan executes.
func (p Plan) Algorithm() assocmine.Algorithm {
	switch p.Kind {
	case PlanMLSHProbe:
		return assocmine.MinLSH
	case PlanKMHScan:
		return assocmine.KMinHash
	default:
		return assocmine.MinHash
	}
}

// indexInfo describes which indexes a server holds, for planning.
type indexInfo struct {
	haveSig bool
	sigK    int
	haveSk  bool
}

// bandDetect is the probability that a pair at similarity s shares at
// least one of l bands of r rows: 1 - (1 - s^r)^l (§4.1).
func bandDetect(s float64, r, l int) float64 {
	return 1 - math.Pow(1-math.Pow(s, float64(r)), float64(l))
}

// choosePlan picks the resident index for a pair-style query at the
// given effective threshold (for top-k queries, the search floor —
// the lowest threshold the descending search may reach). The rule,
// documented in docs/ALGORITHMS.md:
//
//  1. M-LSH bucket probing when signatures are resident and the
//     banding (R=5, L=K/5) detects a pair at the threshold with
//     probability >= 0.9 — the fast path for high thresholds.
//  2. Otherwise the K-MH sketch scan when sketches are resident —
//     reliable at any threshold, with unbiased estimates.
//  3. Otherwise Row-Sorting over the signatures.
//
// The choice is a pure function of (threshold, resident indexes), so
// identical queries always run identical plans.
func choosePlan(threshold float64, idx indexInfo, force string) (Plan, error) {
	switch force {
	case "", "auto":
	case "mlsh":
		if !idx.haveSig {
			return Plan{}, fmt.Errorf("no resident signatures for algo %q", force)
		}
		r, l := bandLayout(idx.sigK)
		return Plan{Kind: PlanMLSHProbe, R: r, L: l, Reason: "forced by request"}, nil
	case "kmh":
		if !idx.haveSk {
			return Plan{}, fmt.Errorf("no resident sketches for algo %q", force)
		}
		return Plan{Kind: PlanKMHScan, Reason: "forced by request"}, nil
	case "mh":
		if !idx.haveSig {
			return Plan{}, fmt.Errorf("no resident signatures for algo %q", force)
		}
		return Plan{Kind: PlanMHSort, Reason: "forced by request"}, nil
	case "bps":
		// Biased pair sampling re-draws from the raw rows on every run;
		// there is no resident index to answer from, so it is a batch
		// algorithm only.
		return Plan{}, fmt.Errorf("algo %q samples raw rows and has no resident index; use assocfind -algo bps", force)
	default:
		return Plan{}, fmt.Errorf("unknown algo %q (want auto, mlsh, kmh or mh)", force)
	}
	if idx.haveSig {
		r, l := bandLayout(idx.sigK)
		if det := bandDetect(threshold, r, l); det >= minDetect {
			return Plan{
				Kind: PlanMLSHProbe, R: r, L: l,
				Reason: fmt.Sprintf("banding detects s>=%.2f pairs with p=%.3f", threshold, det),
			}, nil
		}
	}
	if idx.haveSk {
		return Plan{
			Kind:   PlanKMHScan,
			Reason: fmt.Sprintf("threshold %.2f below banding reliability; sketch scan is exact-recall", threshold),
		}, nil
	}
	if idx.haveSig {
		return Plan{
			Kind:   PlanMHSort,
			Reason: fmt.Sprintf("threshold %.2f below banding reliability and no sketches resident", threshold),
		}, nil
	}
	return Plan{}, fmt.Errorf("no resident index can answer the query")
}

// bandLayout derives the M-LSH banding from a resident signature size:
// R=5 rows per band, every complete band used.
func bandLayout(sigK int) (r, l int) {
	r = bandR
	l = sigK / r
	if l < 1 {
		l = 1
	}
	return r, l
}
