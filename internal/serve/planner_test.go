package serve

import (
	"math"
	"testing"
)

func TestBandDetect(t *testing.T) {
	// 1-(1-s^r)^l against hand-computed values.
	cases := []struct {
		s    float64
		r, l int
		want float64
	}{
		{0.9, 5, 40, 1 - math.Pow(1-math.Pow(0.9, 5), 40)},
		{0.5, 5, 40, 1 - math.Pow(1-math.Pow(0.5, 5), 40)},
		{1.0, 5, 1, 1},
		{0.0, 5, 40, 0},
	}
	for _, c := range cases {
		if got := bandDetect(c.s, c.r, c.l); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("bandDetect(%v,%d,%d) = %v, want %v", c.s, c.r, c.l, got, c.want)
		}
	}
	// Monotone in s.
	prev := -1.0
	for s := 0.0; s <= 1.0; s += 0.05 {
		d := bandDetect(s, 5, 40)
		if d < prev {
			t.Fatalf("bandDetect not monotone at s=%v", s)
		}
		prev = d
	}
}

func TestChoosePlan(t *testing.T) {
	both := indexInfo{haveSig: true, sigK: 200, haveSk: true}
	sigOnly := indexInfo{haveSig: true, sigK: 200}
	skOnly := indexInfo{haveSk: true}

	cases := []struct {
		name      string
		threshold float64
		idx       indexInfo
		force     string
		wantKind  string
		wantErr   bool
	}{
		{"high-threshold-probes", 0.8, both, "", PlanMLSHProbe, false},
		{"low-threshold-scans", 0.2, both, "", PlanKMHScan, false},
		{"low-threshold-no-sketch", 0.2, sigOnly, "", PlanMHSort, false},
		{"high-threshold-sketch-only", 0.8, skOnly, "", PlanKMHScan, false},
		{"auto-alias", 0.8, both, "auto", PlanMLSHProbe, false},
		{"force-mlsh", 0.2, both, "mlsh", PlanMLSHProbe, false},
		{"force-kmh", 0.9, both, "kmh", PlanKMHScan, false},
		{"force-mh", 0.9, both, "mh", PlanMHSort, false},
		{"force-missing-index", 0.9, sigOnly, "kmh", "", true},
		// bps is a batch-only algorithm — it samples the raw rows, which
		// are not resident — so forcing it is rejected even when every
		// index is warm.
		{"force-bps-rejected", 0.9, both, "bps", "", true},
		{"unknown-force", 0.9, both, "quantum", "", true},
		{"no-index", 0.9, indexInfo{}, "", "", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			plan, err := choosePlan(c.threshold, c.idx, c.force)
			if c.wantErr {
				if err == nil {
					t.Fatalf("want error, got plan %+v", plan)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if plan.Kind != c.wantKind {
				t.Fatalf("plan %q, want %q (reason: %s)", plan.Kind, c.wantKind, plan.Reason)
			}
			if plan.Kind == PlanMLSHProbe {
				if plan.R != bandR || plan.L != c.idx.sigK/bandR {
					t.Fatalf("layout R=%d L=%d, want R=%d L=%d", plan.R, plan.L, bandR, c.idx.sigK/bandR)
				}
			}
			if plan.Reason == "" {
				t.Fatal("plan has no reason")
			}
		})
	}

	// The mlsh/kmh boundary sits exactly where detection crosses 0.9.
	r, l := bandLayout(200)
	for s := 0.05; s < 1; s += 0.01 {
		plan, err := choosePlan(s, both, "")
		if err != nil {
			t.Fatal(err)
		}
		wantProbe := bandDetect(s, r, l) >= minDetect
		if (plan.Kind == PlanMLSHProbe) != wantProbe {
			t.Fatalf("at threshold %.2f got %s, detect=%v", s, plan.Kind, bandDetect(s, r, l))
		}
	}
}

func TestBandLayout(t *testing.T) {
	if r, l := bandLayout(200); r != 5 || l != 40 {
		t.Fatalf("bandLayout(200) = (%d,%d), want (5,40)", r, l)
	}
	if r, l := bandLayout(3); r != 5 || l != 1 {
		t.Fatalf("bandLayout(3) = (%d,%d), want (5,1)", r, l)
	}
}
