package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// Request decoding is strict: unknown fields, trailing data and
// out-of-range parameters are all 400s, decided before any query work
// starts. The decode helpers operate on bytes (not streams) so the
// fuzz target drives exactly the code the HTTP handlers run.

// decodeRequest unmarshals one JSON value into dst, rejecting unknown
// fields and trailing garbage.
func decodeRequest(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// budgetFields are the per-query budget knobs every query request
// carries: a wall-clock budget in milliseconds (clamped to the
// server's MaxTimeout; 0 means the server's DefaultTimeout) and a
// verification-phase memory budget in bytes (clamped to the server's
// MemoryBudget when one is set; 0 means the server default).
type budgetFields struct {
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	MemBudget int64 `json:"mem_budget,omitempty"`
}

func (b budgetFields) validate() error {
	if b.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", b.TimeoutMS)
	}
	if b.MemBudget < 0 {
		return fmt.Errorf("mem_budget must be >= 0, got %d", b.MemBudget)
	}
	return nil
}

// PairsRequest asks for all column pairs with similarity >= Threshold.
type PairsRequest struct {
	Threshold float64 `json:"threshold"`
	// Algo forces a plan: "mlsh", "kmh", "mh"; "" or "auto" lets the
	// planner choose.
	Algo string `json:"algo,omitempty"`
	budgetFields
}

func (q *PairsRequest) validate(cols int) error {
	if q.Threshold <= 0 || q.Threshold > 1 {
		return fmt.Errorf("threshold must be in (0,1], got %v", q.Threshold)
	}
	return q.budgetFields.validate()
}

// TopKRequest asks for the K columns most similar to Col.
type TopKRequest struct {
	Col int `json:"col"`
	K   int `json:"k"`
	// Floor bounds the descending threshold search from below
	// (default 0.05).
	Floor float64 `json:"floor,omitempty"`
	Algo  string  `json:"algo,omitempty"`
	budgetFields
}

func (q *TopKRequest) validate(cols, maxTopK int) error {
	if q.Col < 0 || q.Col >= cols {
		return fmt.Errorf("col %d out of range [0,%d)", q.Col, cols)
	}
	if q.K < 1 || q.K > maxTopK {
		return fmt.Errorf("k must be in [1,%d], got %d", maxTopK, q.K)
	}
	if q.Floor < 0 || q.Floor > 1 {
		return fmt.Errorf("floor must be in [0,1], got %v", q.Floor)
	}
	return q.budgetFields.validate()
}

// TopPairsRequest asks for the N most similar pairs dataset-wide.
type TopPairsRequest struct {
	N     int     `json:"n"`
	Floor float64 `json:"floor,omitempty"`
	Algo  string  `json:"algo,omitempty"`
	budgetFields
}

func (q *TopPairsRequest) validate(maxTopK int) error {
	if q.N < 1 || q.N > maxTopK {
		return fmt.Errorf("n must be in [1,%d], got %d", maxTopK, q.N)
	}
	if q.Floor < 0 || q.Floor > 1 {
		return fmt.Errorf("floor must be in [0,1], got %v", q.Floor)
	}
	return q.budgetFields.validate()
}

// RulesRequest asks for all rules with confidence >= MinConfidence
// (§6, support-free).
type RulesRequest struct {
	MinConfidence float64 `json:"min_confidence"`
	// Delta loosens the candidate filter (see assocmine.RuleConfig);
	// 0 means the library default.
	Delta float64 `json:"delta,omitempty"`
	budgetFields
}

func (q *RulesRequest) validate() error {
	if q.MinConfidence <= 0 || q.MinConfidence > 1 {
		return fmt.Errorf("min_confidence must be in (0,1], got %v", q.MinConfidence)
	}
	if q.Delta < 0 || q.Delta >= 1 {
		return fmt.Errorf("delta must be in [0,1), got %v", q.Delta)
	}
	return q.budgetFields.validate()
}

// ExprRequest asks a boolean-composition question (§7). Op selects the
// question: "cardinality" takes Expr; "similarity" and "confidence"
// take A and B. Expressions use the ParseExpr syntax.
type ExprRequest struct {
	Op   string `json:"op"`
	Expr string `json:"expr,omitempty"`
	A    string `json:"a,omitempty"`
	B    string `json:"b,omitempty"`
	budgetFields
}

func (q *ExprRequest) validate() error {
	switch q.Op {
	case "cardinality":
		if q.Expr == "" {
			return errors.New(`op "cardinality" needs "expr"`)
		}
		if q.A != "" || q.B != "" {
			return fmt.Errorf("op %q takes only %q", q.Op, "expr")
		}
	case "similarity", "confidence":
		if q.A == "" || q.B == "" {
			return fmt.Errorf("op %q needs %q and %q", q.Op, "a", "b")
		}
		if q.Expr != "" {
			return fmt.Errorf("op %q takes %q and %q, not %q", q.Op, "a", "b", "expr")
		}
	default:
		return fmt.Errorf("unknown op %q (want cardinality, similarity or confidence)", q.Op)
	}
	return q.budgetFields.validate()
}

// PairJSON is one similar pair in a response.
type PairJSON struct {
	I          int     `json:"i"`
	J          int     `json:"j"`
	Estimate   float64 `json:"estimate,omitempty"`
	Similarity float64 `json:"similarity"`
}

// NeighborJSON is one neighbor column in a top-k response.
type NeighborJSON struct {
	Col        int     `json:"col"`
	Estimate   float64 `json:"estimate,omitempty"`
	Similarity float64 `json:"similarity"`
}

// PairsResponse answers /v1/pairs and /v1/toppairs.
type PairsResponse struct {
	Plan  Plan       `json:"plan"`
	Count int        `json:"count"`
	Pairs []PairJSON `json:"pairs"`
}

// TopKResponse answers /v1/topk.
type TopKResponse struct {
	Plan      Plan           `json:"plan"`
	Col       int            `json:"col"`
	Neighbors []NeighborJSON `json:"neighbors"`
}

// RuleJSON is one verified rule in a response.
type RuleJSON struct {
	From       int     `json:"from"`
	To         int     `json:"to"`
	Estimate   float64 `json:"estimate"`
	Confidence float64 `json:"confidence"`
}

// RulesResponse answers /v1/rules.
type RulesResponse struct {
	Count int        `json:"count"`
	Rules []RuleJSON `json:"rules"`
}

// ExprResponse answers /v1/expr.
type ExprResponse struct {
	Op    string  `json:"op"`
	Value float64 `json:"value"`
}

// RefreshResponse answers /v1/refresh.
type RefreshResponse struct {
	NewRows int   `json:"new_rows"`
	Rows    int   `json:"rows"`
	Queries int64 `json:"queries"`
}

// HealthResponse answers /healthz.
type HealthResponse struct {
	Status   string `json:"status"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	SigK     int    `json:"sig_k,omitempty"`
	SketchK  int    `json:"sketch_k,omitempty"`
	Queries  int64  `json:"queries"`
	Inflight int64  `json:"inflight"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
