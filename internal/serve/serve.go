package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"assocmine"
	"assocmine/internal/obs"
)

// ErrStaticIndex is returned by Refresh when the server was built from
// preloaded static indexes (or an in-memory dataset) and has no ingest
// state to catch up from.
var ErrStaticIndex = errors.New("serve: index is static; refresh needs a file-backed server with ingest state")

// Options configures a Server. Zero values select the documented
// defaults.
type Options struct {
	// SigK is the min-hash signature size computed at startup; default
	// 200 (rule confidence estimation needs K >= 200, §6, and pair
	// queries only get more accurate).
	SigK int
	// SketchK is the bottom-k sketch size; default 256 (also the
	// expression evaluator's sketch, error ~1/sqrt(k), §7).
	SketchK int
	// Seed drives all hashing; default 1.
	Seed uint64
	// Workers is the per-query worker budget (assocmine.Config.Workers
	// semantics). Default 1 — a serving process gets its parallelism
	// from concurrent queries, not from fanning out each one.
	Workers int
	// DefaultTimeout is the per-query wall-clock budget applied when a
	// request does not set timeout_ms; 0 means no default limit.
	DefaultTimeout time.Duration
	// MaxTimeout caps the budget any request may ask for; default 1m.
	MaxTimeout time.Duration
	// MemoryBudget is the per-query verification memory budget
	// (assocmine.Config.MemoryBudget semantics): the default when a
	// request sets no mem_budget, and the cap for requests that do.
	// 0 means unlimited.
	MemoryBudget int64
	// SpillDir receives budgeted-verification spill runs; "" = OS temp.
	SpillDir string
	// MaxTopK caps k/n in top-k queries; default 100.
	MaxTopK int
	// MaxBodyBytes caps request bodies; default 1 MiB.
	MaxBodyBytes int64
	// CacheSize bounds the response cache: rendered 200 responses to
	// the read-only query endpoints, keyed by (index generation,
	// canonical request body) and invalidated when a refresh swaps the
	// generation. 0 means 256 entries; negative disables caching.
	CacheSize int
	// RefreshInterval, for file-backed servers, enables periodic
	// self-refresh: the backing file is stat-polled at this interval
	// and appended rows are folded in through the same incremental
	// path as /v1/refresh. 0 disables; static servers ignore it.
	RefreshInterval time.Duration
	// Collector receives the server's metrics (query counters, per-
	// endpoint latency spans, and every query's pipeline counters).
	// One is created when nil; exposed on /metrics and /debug/vars.
	Collector *obs.Collector
	// Signatures and Sketches, when non-nil, are preloaded indexes
	// (LoadSignatures/LoadSketches) adopted instead of computing at
	// startup. A server with a preloaded index cannot Refresh.
	Signatures *assocmine.Signatures
	Sketches   *assocmine.Sketches
	// SnapshotMH and SnapshotKMH, for file-backed servers, are AIN1
	// ingest-snapshot paths: resumed at startup when present, created
	// otherwise, and saved back after every catch-up, so restarts fold
	// only unseen rows.
	SnapshotMH  string
	SnapshotKMH string
}

func (o *Options) setDefaults() {
	if o.SigK == 0 {
		o.SigK = 200
	}
	if o.SketchK == 0 {
		o.SketchK = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = time.Minute
	}
	if o.MaxTopK == 0 {
		o.MaxTopK = 100
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.Collector == nil {
		o.Collector = obs.NewCollector()
	}
}

// index is one immutable generation of the resident indexes. Queries
// grab the current generation once and use it throughout, so a
// concurrent Refresh never mixes generations within a query.
type index struct {
	data *assocmine.Dataset
	sig  *assocmine.Signatures
	sk   *assocmine.Sketches
	expr *assocmine.ExprEvaluator
}

func (ix *index) info() indexInfo {
	inf := indexInfo{}
	if ix.sig != nil {
		inf.haveSig, inf.sigK = true, ix.sig.K()
	}
	if ix.sk != nil {
		inf.haveSk = true
	}
	return inf
}

// Server is a resident similarity service: signatures and sketches
// computed (or loaded) once, kept warm, answering concurrent queries.
// All methods are safe for concurrent use.
type Server struct {
	opts Options
	coll *obs.Collector

	// path and the ingests are set only for file-backed servers; they
	// are what Refresh catches up. refreshMu serialises refreshes.
	path          string
	ingMH, ingKMH *assocmine.Ingest
	refreshMu     sync.Mutex

	mu  sync.RWMutex // guards idx
	idx *index

	// cache is the LRU response cache; nil when disabled.
	cache *responseCache

	// refreshStop/refreshDone bracket the self-refresh poller's
	// lifetime; refreshOnce makes stopping idempotent across repeated
	// Shutdowns.
	refreshStop chan struct{}
	refreshDone chan struct{}
	refreshOnce sync.Once

	// drainMu orders the draining flag against in-flight registration:
	// handlers hold the read side while checking the flag and joining
	// the WaitGroup, so Shutdown's Wait can never race an Add.
	drainMu   sync.RWMutex
	draining  bool
	inflight  sync.WaitGroup
	inflightN atomic.Int64
	queries   atomic.Int64

	handler http.Handler

	// queryGate, when set (tests only), runs inside every query after
	// in-flight registration and before the handler body — a seam for
	// holding a known number of queries in flight deterministically.
	queryGate func(name string)

	httpMu  sync.Mutex
	httpSrv *http.Server
}

// New builds a server over an in-memory dataset, computing any index
// not preloaded in opts. The resulting server is static: Refresh
// returns ErrStaticIndex.
func New(data *assocmine.Dataset, opts Options) (*Server, error) {
	opts.setDefaults()
	sig := opts.Signatures
	if sig == nil {
		var err error
		if sig, err = assocmine.ComputeSignatures(data, opts.SigK, opts.Seed, opts.Workers); err != nil {
			return nil, fmt.Errorf("serve: computing signatures: %w", err)
		}
	}
	sk := opts.Sketches
	if sk == nil {
		var err error
		if sk, err = assocmine.ComputeSketches(data, opts.SketchK, opts.Seed, opts.Workers); err != nil {
			return nil, fmt.Errorf("serve: computing sketches: %w", err)
		}
	}
	return finishNew(opts, &index{data: data, sig: sig, sk: sk}, "", nil, nil)
}

// NewFromFile builds a server over a dataset file. Indexes not
// preloaded in opts are built through the incremental-ingest catch-up
// path (resuming from opts.Snapshot* when set), which is also what
// makes Refresh possible: when the file grows, Refresh folds only the
// unseen rows and swaps in a fresh index generation.
func NewFromFile(path string, opts Options) (*Server, error) {
	opts.setDefaults()
	fd, err := assocmine.OpenFileDataset(path)
	if err != nil {
		return nil, err
	}
	var ingMH, ingKMH *assocmine.Ingest
	sig, sk := opts.Signatures, opts.Sketches
	if sig == nil {
		if ingMH, err = openIngest(assocmine.MinHash, opts.SnapshotMH, fd.NumCols(), opts.SigK, opts.Seed); err != nil {
			return nil, err
		}
		if _, err = ingMH.CatchUp(fd, opts.Workers); err != nil {
			return nil, fmt.Errorf("serve: mh catch-up: %w", err)
		}
		if sig, err = ingMH.Signatures(); err != nil {
			return nil, err
		}
	}
	if sk == nil {
		if ingKMH, err = openIngest(assocmine.KMinHash, opts.SnapshotKMH, fd.NumCols(), opts.SketchK, opts.Seed); err != nil {
			return nil, err
		}
		if _, err = ingKMH.CatchUp(fd, opts.Workers); err != nil {
			return nil, fmt.Errorf("serve: kmh catch-up: %w", err)
		}
		if sk, err = ingKMH.Sketches(); err != nil {
			return nil, err
		}
	}
	data, err := fd.Load()
	if err != nil {
		return nil, err
	}
	s, err := finishNew(opts, &index{data: data, sig: sig, sk: sk}, path, ingMH, ingKMH)
	if err != nil {
		return nil, err
	}
	if err := s.saveSnapshots(); err != nil {
		return nil, err
	}
	s.startRefresher()
	return s, nil
}

// openIngest resumes an AIN1 snapshot when path names one, validating
// it against the server's index parameters, and starts fresh
// otherwise.
func openIngest(algo assocmine.Algorithm, path string, cols, k int, seed uint64) (*assocmine.Ingest, error) {
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			in, err := assocmine.LoadIngest(path)
			if err != nil {
				return nil, err
			}
			if in.Algorithm() != algo || in.K() != k || in.Seed() != seed {
				return nil, fmt.Errorf("serve: snapshot %s was built with algo %v k %d seed %d, server wants %v/%d/%d",
					path, in.Algorithm(), in.K(), in.Seed(), algo, k, seed)
			}
			if in.WindowBatches() != 0 {
				return nil, fmt.Errorf("serve: snapshot %s uses a sliding window; the resident service serves full-history indexes", path)
			}
			if in.NumCols() != cols {
				return nil, fmt.Errorf("serve: snapshot %s covers %d columns, dataset has %d", path, in.NumCols(), cols)
			}
			return in, nil
		}
	}
	return assocmine.NewIngest(algo, cols, k, seed, 0)
}

func finishNew(opts Options, ix *index, path string, ingMH, ingKMH *assocmine.Ingest) (*Server, error) {
	if ix.sig.NumCols() != ix.data.NumCols() {
		return nil, fmt.Errorf("serve: signatures cover %d columns, dataset has %d", ix.sig.NumCols(), ix.data.NumCols())
	}
	if ix.sk.NumCols() != ix.data.NumCols() {
		return nil, fmt.Errorf("serve: sketches cover %d columns, dataset has %d", ix.sk.NumCols(), ix.data.NumCols())
	}
	ix.expr = assocmine.NewExprEvaluatorFromSketches(ix.sk)
	s := &Server{
		opts:   opts,
		coll:   opts.Collector,
		path:   path,
		ingMH:  ingMH,
		ingKMH: ingKMH,
		idx:    ix,
	}
	if opts.CacheSize > 0 {
		s.cache = newResponseCache(opts.CacheSize)
	}
	s.handler = s.buildMux()
	s.coll.SetGauge("serve_rows", int64(ix.data.NumRows()))
	s.coll.SetGauge("serve_cols", int64(ix.data.NumCols()))
	return s, nil
}

func (s *Server) saveSnapshots() error {
	if s.ingMH != nil && s.opts.SnapshotMH != "" {
		if err := s.ingMH.Save(s.opts.SnapshotMH); err != nil {
			return err
		}
	}
	if s.ingKMH != nil && s.opts.SnapshotKMH != "" {
		if err := s.ingKMH.Save(s.opts.SnapshotKMH); err != nil {
			return err
		}
	}
	return nil
}

// index returns the current index generation.
func (s *Server) index() *index {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx
}

// Refresh re-opens the backing file, folds rows appended since the
// last catch-up into the ingest states (O(new rows) — the PR 7
// incremental path, never a recompute), rebuilds the index generation
// and swaps it in. In-flight queries keep the generation they started
// with; on error the old generation stays live. Returns the number of
// new rows folded.
func (s *Server) Refresh() (int, error) {
	if s.path == "" || s.ingMH == nil || s.ingKMH == nil {
		return 0, ErrStaticIndex
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	fd, err := assocmine.OpenFileDataset(s.path)
	if err != nil {
		return 0, err
	}
	n, err := s.ingMH.CatchUp(fd, s.opts.Workers)
	if err != nil {
		return 0, fmt.Errorf("serve: mh catch-up: %w", err)
	}
	if _, err := s.ingKMH.CatchUp(fd, s.opts.Workers); err != nil {
		return 0, fmt.Errorf("serve: kmh catch-up: %w", err)
	}
	if n == 0 {
		return 0, nil // nothing new; current generation is already right
	}
	sig, err := s.ingMH.Signatures()
	if err != nil {
		return 0, err
	}
	sk, err := s.ingKMH.Sketches()
	if err != nil {
		return 0, err
	}
	data, err := fd.Load()
	if err != nil {
		return 0, err
	}
	ix := &index{data: data, sig: sig, sk: sk, expr: assocmine.NewExprEvaluatorFromSketches(sk)}
	if err := s.saveSnapshots(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.idx = ix
	s.mu.Unlock()
	// Entries keyed to the old generation can no longer be hit; drop
	// them now rather than waiting for LRU pressure.
	if s.cache != nil {
		s.cache.purge()
	}
	s.coll.Add("index_refreshes", 1)
	s.coll.SetGauge("serve_rows", int64(data.NumRows()))
	return n, nil
}

// startRefresher launches the periodic self-refresh poller when the
// server can refresh and RefreshInterval asks for it. The backing
// file is stat-polled each tick; a size or mtime change triggers the
// same incremental catch-up as /v1/refresh. Stat first, so an
// unchanged file costs one syscall per tick, not a header parse.
func (s *Server) startRefresher() {
	if s.opts.RefreshInterval <= 0 || s.path == "" || s.ingMH == nil || s.ingKMH == nil {
		return
	}
	s.refreshStop = make(chan struct{})
	s.refreshDone = make(chan struct{})
	var lastSize int64
	var lastMod time.Time
	if fi, err := os.Stat(s.path); err == nil {
		lastSize, lastMod = fi.Size(), fi.ModTime()
	}
	go func() {
		defer close(s.refreshDone)
		t := time.NewTicker(s.opts.RefreshInterval)
		defer t.Stop()
		for {
			select {
			case <-s.refreshStop:
				return
			case <-t.C:
				fi, err := os.Stat(s.path)
				if err != nil {
					s.coll.Add("refresh_errors", 1)
					continue
				}
				if fi.Size() == lastSize && fi.ModTime().Equal(lastMod) {
					continue
				}
				lastSize, lastMod = fi.Size(), fi.ModTime()
				if _, err := s.Refresh(); err != nil {
					s.coll.Add("refresh_errors", 1)
				}
			}
		}
	}()
}

// stopRefresher halts the self-refresh poller and waits it out, so no
// refresh can start after Shutdown returns. Safe to call repeatedly
// and on servers that never started one.
func (s *Server) stopRefresher() {
	if s.refreshStop == nil {
		return
	}
	s.refreshOnce.Do(func() { close(s.refreshStop) })
	<-s.refreshDone
}

// Handler returns the server's HTTP handler (stable across calls), for
// tests and embedding; Start is the listener-owning convenience.
func (s *Server) Handler() http.Handler { return s.handler }

// Collector returns the server's metrics collector.
func (s *Server) Collector() *obs.Collector { return s.coll }

// Queries returns the number of query requests accepted so far.
func (s *Server) Queries() int64 { return s.queries.Load() }

// Inflight returns the number of queries currently executing.
func (s *Server) Inflight() int64 { return s.inflightN.Load() }

// Start listens on addr ("host:port"; ":0" picks a free port) and
// serves in a background goroutine until Shutdown. It returns the
// bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.httpSrv != nil {
		return nil, errors.New("serve: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.handler}
	s.httpSrv = srv
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown drains the server gracefully: new queries are refused with
// 503, the listener (when Start was used) stops accepting, and the
// call blocks until every in-flight query has completed or ctx
// expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.stopRefresher()
	var err error
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return err
}

// enter registers one in-flight query; it reports false once the
// server is draining. The paired leave must be called iff it returns
// true.
func (s *Server) enter() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	s.inflightN.Add(1)
	s.queries.Add(1)
	return true
}

func (s *Server) leave() {
	s.inflightN.Add(-1)
	s.inflight.Done()
}

// queryContext derives a query's context from the request context (so
// a disconnecting client cancels its query) plus the effective
// wall-clock budget: timeout_ms when set, else DefaultTimeout, both
// capped by MaxTimeout.
func (s *Server) queryContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if s.opts.MaxTimeout > 0 && (d <= 0 || d > s.opts.MaxTimeout) {
		d = s.opts.MaxTimeout
	}
	if d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return context.WithCancel(r.Context())
}

// queryConfig assembles the assocmine.Config shared by every
// pair-style query: the server's worker and seed policy plus the
// query's context and effective memory budget (request value capped
// by the server's budget; 0 falls back to the server's).
func (s *Server) queryConfig(ctx context.Context, memBudget int64) assocmine.Config {
	b := memBudget
	if b == 0 {
		b = s.opts.MemoryBudget
	}
	if s.opts.MemoryBudget > 0 && b > s.opts.MemoryBudget {
		b = s.opts.MemoryBudget
	}
	return assocmine.Config{
		Seed:         s.opts.Seed,
		Workers:      s.opts.Workers,
		Context:      ctx,
		MemoryBudget: b,
		SpillDir:     s.opts.SpillDir,
		Recorder:     s.coll,
	}
}
