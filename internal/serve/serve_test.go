package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"assocmine"
)

// testRows generates a deterministic sparse dataset with correlated
// column pairs (2t, 2t+1) across a spread of similarities, so pair,
// top-k, rule and expression queries all have non-trivial answers.
func testRows(rows, cols int) [][]int {
	rng := rand.New(rand.NewSource(42))
	data := make([][]int, rows)
	for r := range data {
		var row []int
		for c := 0; c+1 < cols; c += 2 {
			p := 0.03 + 0.05*float64(c%7)/7
			if rng.Float64() < p {
				row = append(row, c)
				if rng.Float64() < float64((c/2)%11)/10 {
					row = append(row, c+1)
				}
			} else if rng.Float64() < 0.008 {
				row = append(row, c+1)
			}
		}
		data[r] = row
	}
	return data
}

func testDataset(tb testing.TB, rows, cols int) *assocmine.Dataset {
	tb.Helper()
	d, err := assocmine.NewDatasetFromRows(cols, testRows(rows, cols))
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

func mustServer(tb testing.TB, d *assocmine.Dataset) *Server {
	tb.Helper()
	s, err := New(d, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// mustBody marshals v exactly as writeJSON does (Encoder appends '\n'),
// so expected bodies compare bit-for-bit against server responses.
func mustBody(tb testing.TB, v any) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// recordPost drives the handler directly (no sockets) and returns the
// recorded response.
func recordPost(h http.Handler, path, body string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	h.ServeHTTP(rr, req)
	return rr
}

// queryCase pairs a request with the response the library computes for
// it directly, bypassing the HTTP layer entirely.
type queryCase struct {
	name string
	path string
	body string
	want []byte
}

func mustPlan(tb testing.TB, threshold float64, ix *index, force string) Plan {
	tb.Helper()
	plan, err := choosePlan(threshold, ix.info(), force)
	if err != nil {
		tb.Fatal(err)
	}
	return plan
}

// libraryCases computes, via direct single-threaded library calls, the
// exact responses the server must produce for a fixed set of queries
// covering every endpoint and plan kind.
func libraryCases(tb testing.TB, s *Server) []queryCase {
	tb.Helper()
	ix := s.index()
	base := assocmine.Config{Seed: s.opts.Seed, Workers: 1}
	var cases []queryCase

	addPairs := func(name string, threshold float64, force string) {
		plan := mustPlan(tb, threshold, ix, force)
		cfg := base
		cfg.Threshold = threshold
		res, err := runPlan(ix, plan, cfg)
		if err != nil {
			tb.Fatal(err)
		}
		body := `{"threshold":` + jsonNum(threshold) + forceField(force) + `}`
		cases = append(cases, queryCase{
			name: name, path: "/v1/pairs", body: body,
			want: mustBody(tb, PairsResponse{Plan: plan, Count: len(res.Pairs), Pairs: toPairJSON(res.Pairs)}),
		})
	}
	addPairs("pairs-mlsh", 0.75, "")
	addPairs("pairs-kmh", 0.3, "")
	addPairs("pairs-mh", 0.3, "mh")

	// topk via the default plan (floor 0.05 -> sketch scan).
	{
		const col, k = 2, 5
		plan := mustPlan(tb, defaultTopFloor, ix, "")
		cfg := topConfig(base, defaultTopFloor)
		pairs, err := assocmine.TopColumnsWithSketches(ix.data, ix.sk, col, k, cfg, defaultTopFloor)
		if err != nil {
			tb.Fatal(err)
		}
		nbrs := make([]NeighborJSON, len(pairs))
		for i, p := range pairs {
			other := p.I
			if other == col {
				other = p.J
			}
			nbrs[i] = NeighborJSON{Col: other, Estimate: p.Estimate, Similarity: p.Similarity}
		}
		cases = append(cases, queryCase{
			name: "topk-kmh", path: "/v1/topk", body: `{"col":2,"k":5}`,
			want: mustBody(tb, TopKResponse{Plan: plan, Col: col, Neighbors: nbrs}),
		})
	}

	// toppairs with a floor high enough for banding (mlsh plan).
	{
		const n = 4
		const floor = 0.6
		plan := mustPlan(tb, floor, ix, "")
		cfg := topConfig(base, floor)
		cfg.Algorithm = plan.Algorithm()
		cfg.R, cfg.L = plan.R, plan.L
		pairs, err := assocmine.TopPairsWithSignatures(ix.data, ix.sig, n, cfg, floor)
		if err != nil {
			tb.Fatal(err)
		}
		cases = append(cases, queryCase{
			name: "toppairs-mlsh", path: "/v1/toppairs", body: `{"n":4,"floor":0.6}`,
			want: mustBody(tb, PairsResponse{Plan: plan, Count: len(pairs), Pairs: toPairJSON(pairs)}),
		})
	}

	// rules straight from the resident signatures.
	{
		res, err := assocmine.MineRulesWithSignatures(ix.data, ix.sig, assocmine.RuleConfig{
			MinConfidence: 0.9, Seed: s.opts.Seed,
		})
		if err != nil {
			tb.Fatal(err)
		}
		rules := make([]RuleJSON, len(res.Rules))
		for i, rr := range res.Rules {
			rules[i] = RuleJSON{From: rr.From, To: rr.To, Estimate: rr.Estimate, Confidence: rr.Confidence}
		}
		cases = append(cases, queryCase{
			name: "rules", path: "/v1/rules", body: `{"min_confidence":0.9}`,
			want: mustBody(tb, RulesResponse{Count: len(rules), Rules: rules}),
		})
	}

	// boolean-composition queries from the resident sketches.
	addExpr := func(name, body string, compute func() (float64, error), op string) {
		v, err := compute()
		if err != nil {
			tb.Fatal(err)
		}
		cases = append(cases, queryCase{
			name: name, path: "/v1/expr", body: body,
			want: mustBody(tb, ExprResponse{Op: op, Value: v}),
		})
	}
	addExpr("expr-card", `{"op":"cardinality","expr":"0|1"}`, func() (float64, error) {
		return ix.expr.Cardinality(assocmine.AnyOf(assocmine.Col(0), assocmine.Col(1)))
	}, "cardinality")
	addExpr("expr-sim", `{"op":"similarity","a":"0","b":"1"}`, func() (float64, error) {
		return ix.expr.Similarity(assocmine.Col(0), assocmine.Col(1))
	}, "similarity")
	addExpr("expr-conf", `{"op":"confidence","a":"any(0,2)","b":"1"}`, func() (float64, error) {
		return ix.expr.Confidence(assocmine.AnyOf(assocmine.Col(0), assocmine.Col(2)), assocmine.Col(1))
	}, "confidence")

	return cases
}

func jsonNum(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

func forceField(force string) string {
	if force == "" {
		return ""
	}
	return `,"algo":"` + force + `"`
}

// TestServerMatchesLibrary checks every endpoint serially: the HTTP
// response must be byte-identical to the direct library computation.
func TestServerMatchesLibrary(t *testing.T) {
	s := mustServer(t, testDataset(t, 400, 48))
	for _, c := range libraryCases(t, s) {
		t.Run(c.name, func(t *testing.T) {
			rr := recordPost(s.Handler(), c.path, c.body)
			if rr.Code != http.StatusOK {
				t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
			}
			if !bytes.Equal(rr.Body.Bytes(), c.want) {
				t.Fatalf("response differs from library:\n got %s\nwant %s", rr.Body.Bytes(), c.want)
			}
		})
	}
}

func TestBadRequests(t *testing.T) {
	s := mustServer(t, testDataset(t, 100, 16))
	h := s.Handler()
	cases := []struct {
		name, path, body string
		status           int
	}{
		{"unknown-field", "/v1/pairs", `{"threshold":0.7,"bogus":1}`, http.StatusBadRequest},
		{"trailing-data", "/v1/pairs", `{"threshold":0.7} {}`, http.StatusBadRequest},
		{"bad-threshold", "/v1/pairs", `{"threshold":1.5}`, http.StatusBadRequest},
		{"zero-threshold", "/v1/pairs", `{"threshold":0}`, http.StatusBadRequest},
		{"bad-algo", "/v1/pairs", `{"threshold":0.7,"algo":"quantum"}`, http.StatusBadRequest},
		{"col-range", "/v1/topk", `{"col":16,"k":5}`, http.StatusBadRequest},
		{"neg-col", "/v1/topk", `{"col":-1,"k":5}`, http.StatusBadRequest},
		{"huge-k", "/v1/topk", `{"col":0,"k":100000}`, http.StatusBadRequest},
		{"bad-n", "/v1/toppairs", `{"n":0}`, http.StatusBadRequest},
		{"bad-conf", "/v1/rules", `{"min_confidence":0}`, http.StatusBadRequest},
		{"bad-op", "/v1/expr", `{"op":"entropy","expr":"1"}`, http.StatusBadRequest},
		{"expr-col-range", "/v1/expr", `{"op":"cardinality","expr":"99"}`, http.StatusBadRequest},
		{"expr-syntax", "/v1/expr", `{"op":"cardinality","expr":"1&&2"}`, http.StatusBadRequest},
		{"expr-mixed-args", "/v1/expr", `{"op":"cardinality","expr":"1","a":"2"}`, http.StatusBadRequest},
		{"neg-timeout", "/v1/pairs", `{"threshold":0.7,"timeout_ms":-1}`, http.StatusBadRequest},
		{"not-json", "/v1/pairs", `threshold=0.7`, http.StatusBadRequest},
		{"static-refresh", "/v1/refresh", `{}`, http.StatusConflict},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rr := recordPost(h, c.path, c.body)
			if rr.Code != c.status {
				t.Fatalf("status %d, want %d: %s", rr.Code, c.status, rr.Body.String())
			}
			var e ErrorResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error body not ErrorResponse: %s", rr.Body.String())
			}
		})
	}
	t.Run("get-not-allowed", func(t *testing.T) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/pairs", nil))
		if rr.Code != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", rr.Code)
		}
	})
	t.Run("oversized-body", func(t *testing.T) {
		rr := recordPost(h, "/v1/pairs", `{"threshold":0.7,"algo":"`+strings.Repeat("x", 2<<20)+`"}`)
		if rr.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", rr.Code)
		}
	})
}

func TestHealthz(t *testing.T) {
	s := mustServer(t, testDataset(t, 100, 16))
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Rows != 100 || h.Cols != 16 || h.SigK != 200 || h.SketchK != 256 {
		t.Fatalf("unexpected health: %+v", h)
	}
}

// TestQueryBudgets checks that an exhausted time budget surfaces as
// 504 and a canceled client as 408, by handing the handler a request
// whose context is already dead — deterministic, no sleeps.
func TestQueryBudgets(t *testing.T) {
	s := mustServer(t, testDataset(t, 100, 16))
	post := func(ctx context.Context) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/pairs", strings.NewReader(`{"threshold":0.7}`))
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, req.WithContext(ctx))
		return rr
	}
	t.Run("deadline-exceeded", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		if rr := post(ctx); rr.Code != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504: %s", rr.Code, rr.Body.String())
		}
	})
	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if rr := post(ctx); rr.Code != http.StatusRequestTimeout {
			t.Fatalf("status %d, want 408: %s", rr.Code, rr.Body.String())
		}
	})
}
