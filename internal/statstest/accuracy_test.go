package statstest

import (
	"testing"

	"assocmine"
)

// scenario is one seeded synthetic workload with planted pairs (the
// generator plants them across the 45–95% similarity ranges, paper
// Section 5).
type scenario struct {
	name          string
	rows, cols    int
	minD, maxD    float64
	pairsPerRange int
	seed          uint64
}

var scenarios = []scenario{
	{name: "small-sparse", rows: 600, cols: 150, minD: 0.01, maxD: 0.04, pairsPerRange: 3, seed: 101},
	{name: "mid-denser", rows: 1000, cols: 200, minD: 0.03, maxD: 0.08, pairsPerRange: 4, seed: 202},
}

func (s scenario) dataset(t *testing.T) *assocmine.Dataset {
	t.Helper()
	d, _, err := assocmine.GenerateSynthetic(assocmine.SyntheticOptions{
		Rows: s.rows, Cols: s.cols,
		MinDensity: s.minD, MaxDensity: s.maxD,
		PairsPerRange: s.pairsPerRange, Seed: s.seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSchemeRecall: at similarities comfortably above the threshold
// (above the candidate cutoff (1-Delta)*s*, where the Chernoff-style
// argument of Section 3 applies) each approximate scheme recovers at
// least 95% of the true pairs, on every scenario, deterministically.
func TestSchemeRecall(t *testing.T) {
	const (
		threshold = 0.5
		strongSim = 0.7 // cutoff is (1-0.2)*0.5 = 0.4; 0.7 is "well above"
	)
	schemes := []struct {
		name string
		cfg  assocmine.Config
	}{
		{"MH", assocmine.Config{Algorithm: assocmine.MinHash, Threshold: threshold, K: 100, Seed: 7}},
		{"K-MH", assocmine.Config{Algorithm: assocmine.KMinHash, Threshold: threshold, K: 100, Seed: 7}},
		{"M-LSH", assocmine.Config{Algorithm: assocmine.MinLSH, Threshold: threshold, K: 100, R: 5, L: 20, Seed: 7}},
	}
	for _, sc := range scenarios {
		d := sc.dataset(t)
		for _, s := range schemes {
			out, err := Evaluate(d, s.cfg, strongSim)
			if err != nil {
				t.Fatalf("%s/%s: %v", sc.name, s.name, err)
			}
			if out.StrongPairs == 0 {
				t.Fatalf("%s/%s: scenario planted no pairs above %v — scenario is too weak to test recall", sc.name, s.name, strongSim)
			}
			if r := out.StrongRecall(); r < 0.95 {
				t.Errorf("%s/%s: recall %0.3f over %d strong pairs (found %d), want >= 0.95",
					sc.name, s.name, r, out.StrongPairs, out.StrongFound)
			}
			// Verification makes every returned pair exact, so the only
			// errors an approximate scheme can make are misses.
			if out.Found > out.TruthPairs {
				t.Errorf("%s/%s: returned %d pairs but ground truth has %d", sc.name, s.name, out.Found, out.TruthPairs)
			}
		}
	}
}

// TestFPRateShrinksWithK: for the MH scheme, the candidate
// false-positive rate is non-increasing as the sketch grows (Section 3:
// the agreement estimate concentrates as K grows, so fewer dissimilar
// pairs sneak past the candidate cutoff). Seeds are fixed, so the
// computed rates are exact.
func TestFPRateShrinksWithK(t *testing.T) {
	const threshold = 0.4 // low cutoff so small sketches actually admit noise
	sc := scenarios[1]
	d := sc.dataset(t)
	var prevRate float64
	var prevK int
	for i, k := range []int{8, 32, 128} {
		out, err := Evaluate(d, assocmine.Config{
			Algorithm: assocmine.MinHash, Threshold: threshold, K: k, Seed: 7,
		}, threshold)
		if err != nil {
			t.Fatal(err)
		}
		rate := out.FPRate()
		t.Logf("k=%3d: %d candidates, %d false positives (rate %.4f)", k, out.Candidates, out.FalsePositives, rate)
		if i > 0 && rate > prevRate {
			t.Errorf("FP rate grew with sketch size: k=%d rate %.4f > k=%d rate %.4f", k, rate, prevK, prevRate)
		}
		prevRate, prevK = rate, k
	}
	if prevRate != 0 && prevK == 128 && prevRate > 0.5 {
		t.Errorf("k=128 FP rate %.4f still above 0.5; estimator not concentrating", prevRate)
	}
}

// TestEvaluateDeterministic: the whole harness is a pure function of
// (scenario, Config) — two runs agree field for field.
func TestEvaluateDeterministic(t *testing.T) {
	sc := scenarios[0]
	cfg := assocmine.Config{Algorithm: assocmine.MinLSH, Threshold: 0.5, K: 100, R: 5, L: 20, Seed: 7}
	a, err := Evaluate(sc.dataset(t), cfg, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(sc.dataset(t), cfg, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("two identical runs disagree: %+v vs %+v", a, b)
	}
}

// TestKernelOutcomesAgree: the packed popcount kernel is a pure
// implementation swap for Phase 3 — every Outcome field (recall, FP
// counts, exact similarities behind them) matches the scalar kernel on
// every scenario and scheme.
func TestKernelOutcomesAgree(t *testing.T) {
	schemes := []struct {
		name string
		cfg  assocmine.Config
	}{
		{"MH", assocmine.Config{Algorithm: assocmine.MinHash, Threshold: 0.5, K: 100, Seed: 7}},
		{"K-MH", assocmine.Config{Algorithm: assocmine.KMinHash, Threshold: 0.5, K: 100, Seed: 7}},
		{"M-LSH", assocmine.Config{Algorithm: assocmine.MinLSH, Threshold: 0.5, K: 100, R: 5, L: 20, Seed: 7}},
	}
	for _, sc := range scenarios {
		d := sc.dataset(t)
		for _, s := range schemes {
			cfg := s.cfg
			cfg.VerifyKernel = assocmine.KernelScalar
			scalar, err := Evaluate(d, cfg, 0.7)
			if err != nil {
				t.Fatalf("%s/%s scalar: %v", sc.name, s.name, err)
			}
			cfg.VerifyKernel = assocmine.KernelPacked
			packed, err := Evaluate(d, cfg, 0.7)
			if err != nil {
				t.Fatalf("%s/%s packed: %v", sc.name, s.name, err)
			}
			if scalar != packed {
				t.Errorf("%s/%s: scalar %+v != packed %+v", sc.name, s.name, scalar, packed)
			}
		}
	}
}

// TestSerialParallelOutcomesAgree: parallel evaluation is the same
// experiment — every Outcome field matches the serial run.
func TestSerialParallelOutcomesAgree(t *testing.T) {
	sc := scenarios[0]
	d := sc.dataset(t)
	for _, algo := range []assocmine.Algorithm{assocmine.MinHash, assocmine.MinLSH} {
		cfg := assocmine.Config{Algorithm: algo, Threshold: 0.5, K: 100, R: 5, L: 20, Seed: 7}
		serial, err := Evaluate(d, cfg, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 4
		parallel, err := Evaluate(d, cfg, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if serial != parallel {
			t.Errorf("%v: serial %+v != parallel %+v", algo, serial, parallel)
		}
	}
}
