package statstest

import (
	"testing"

	"assocmine"
)

// bpsConfig is the baseline BPS evaluation config: default sample
// budget (λ = 32), default Delta, fixed seed.
func bpsConfig(threshold float64) assocmine.Config {
	return assocmine.Config{Algorithm: assocmine.BPS, Threshold: threshold, Seed: 7}
}

// TestBPSRecall: at similarities comfortably above the threshold the
// sampler recovers at least 90% of the true pairs on every scenario at
// the default budget. The guarantee has two regimes: low-support pairs
// are counted exactly (p = 1, no misses possible), and subsampled pairs
// concentrate around an expected count >= λ, so the (1-δ) filter bar
// sits several standard deviations below the mean of a strong pair.
func TestBPSRecall(t *testing.T) {
	const (
		threshold = 0.5
		strongSim = 0.7
	)
	for _, sc := range scenarios {
		d := sc.dataset(t)
		out, err := Evaluate(d, bpsConfig(threshold), strongSim)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if out.StrongPairs == 0 {
			t.Fatalf("%s: scenario planted no pairs above %v — too weak to test recall", sc.name, strongSim)
		}
		if r := out.StrongRecall(); r < 0.9 {
			t.Errorf("%s: recall %0.3f over %d strong pairs (found %d), want >= 0.9",
				sc.name, r, out.StrongPairs, out.StrongFound)
		}
		// Verification makes every returned pair exact, so the sampler
		// can only miss, never invent.
		if out.Found > out.TruthPairs {
			t.Errorf("%s: returned %d pairs but ground truth has %d", sc.name, out.Found, out.TruthPairs)
		}
	}
}

// TestBPSFPRateShrinksWithBudget: growing the sample budget λ
// concentrates the accepted counts around their means, so fewer
// dissimilar pairs sneak past the (1-δ)·λ candidate bar — the
// false-positive rate is non-increasing in the budget, the sampling
// analogue of TestFPRateShrinksWithK. The denser scenario keeps the
// support products high enough that small budgets actually subsample.
func TestBPSFPRateShrinksWithBudget(t *testing.T) {
	const threshold = 0.4
	sc := scenarios[1]
	d := sc.dataset(t)
	var prevRate float64
	var prevB int
	for i, b := range []int{1, 4, 16, 64} {
		cfg := bpsConfig(threshold)
		cfg.SampleBudget = b
		out, err := Evaluate(d, cfg, threshold)
		if err != nil {
			t.Fatal(err)
		}
		rate := out.FPRate()
		t.Logf("λ=%3d: %d candidates, %d false positives (rate %.4f)", b, out.Candidates, out.FalsePositives, rate)
		if i > 0 && rate > prevRate {
			t.Errorf("FP rate grew with budget: λ=%d rate %.4f > λ=%d rate %.4f", b, rate, prevB, prevRate)
		}
		prevRate, prevB = rate, b
	}
	if prevRate > 0.5 {
		t.Errorf("λ=%d FP rate %.4f still above 0.5; sampler not concentrating", prevB, prevRate)
	}
}

// TestBPSRecallGrowsWithBudget: recall over all truth pairs is
// non-decreasing in the sample budget and reaches 1.0 once the budget
// pushes every acceptance probability to 1 (exact counting).
func TestBPSRecallGrowsWithBudget(t *testing.T) {
	const threshold = 0.5
	sc := scenarios[1]
	d := sc.dataset(t)
	var prevRecall float64
	var prevB int
	budgets := []int{1, 8, 64, 512}
	for i, b := range budgets {
		cfg := bpsConfig(threshold)
		cfg.SampleBudget = b
		out, err := Evaluate(d, cfg, threshold)
		if err != nil {
			t.Fatal(err)
		}
		r := out.Recall()
		t.Logf("λ=%3d: recall %.4f (%d/%d)", b, r, out.Found, out.TruthPairs)
		if i > 0 && r < prevRecall {
			t.Errorf("recall fell with budget: λ=%d recall %.4f < λ=%d recall %.4f", b, r, prevB, prevRecall)
		}
		prevRecall, prevB = r, b
	}
	if prevRecall < 1 {
		t.Errorf("λ=%d recall %.4f, want 1.0 (exact-counting regime)", prevB, prevRecall)
	}
}

// TestBPSSerialParallelOutcomesAgree: same seed, any worker count —
// identical output, field for field (the seed-splitting determinism
// argument, measured end to end).
func TestBPSSerialParallelOutcomesAgree(t *testing.T) {
	for _, sc := range scenarios {
		d := sc.dataset(t)
		cfg := bpsConfig(0.5)
		serial, err := Evaluate(d, cfg, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 4
		parallel, err := Evaluate(d, cfg, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if serial != parallel {
			t.Errorf("%s: serial %+v != parallel %+v", sc.name, serial, parallel)
		}
	}
}

// TestBPSKernelOutcomesAgree: the verification kernels are a pure
// implementation swap under the sampler too.
func TestBPSKernelOutcomesAgree(t *testing.T) {
	sc := scenarios[0]
	d := sc.dataset(t)
	cfg := bpsConfig(0.5)
	cfg.VerifyKernel = assocmine.KernelScalar
	scalar, err := Evaluate(d, cfg, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.VerifyKernel = assocmine.KernelPacked
	packed, err := Evaluate(d, cfg, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if scalar != packed {
		t.Errorf("scalar %+v != packed %+v", scalar, packed)
	}
}
