// Package statstest measures the statistical accuracy of the
// approximate similar-pairs schemes against exact ground truth on
// seeded synthetic data with planted pairs. The paper's schemes trade
// false negatives for speed; this harness quantifies the trade so the
// test suite can pin it: recall over the comfortably-above-threshold
// pairs (where the theory says misses should be rare) and the candidate
// false-positive rate (which should shrink as sketches grow).
//
// Everything is deterministic in (scenario, Config): the generator,
// hashing and band layouts are all seeded, so the asserted rates are
// exact values, not flaky samples.
package statstest

import (
	"fmt"

	"assocmine"
)

// Outcome summarises one scheme run against BruteForce ground truth at
// the same threshold.
type Outcome struct {
	// TruthPairs is the number of exact pairs at or above the query
	// threshold; StrongPairs the subset with similarity >= the strong
	// cutoff passed to Evaluate, and StrongFound how many of those the
	// scheme returned.
	TruthPairs  int
	StrongPairs int
	StrongFound int
	// Found is the total pairs the scheme returned (verified, so every
	// one is exact — approximate schemes can only under-report).
	Found int
	// Candidates and FalsePositives come from the run's Stats: pairs
	// entering verification and pairs verification killed.
	Candidates     int
	FalsePositives int
}

// StrongRecall is the fraction of comfortably-above-threshold truth
// pairs the scheme recovered (1.0 when there were none to find).
func (o Outcome) StrongRecall() float64 {
	if o.StrongPairs == 0 {
		return 1
	}
	return float64(o.StrongFound) / float64(o.StrongPairs)
}

// Recall is the fraction of all truth pairs recovered.
func (o Outcome) Recall() float64 {
	if o.TruthPairs == 0 {
		return 1
	}
	return float64(o.Found) / float64(o.TruthPairs)
}

// FPRate is the fraction of candidates that verification killed — the
// cost the paper's Section 3 accuracy knobs (K, Delta) control.
func (o Outcome) FPRate() float64 {
	if o.Candidates == 0 {
		return 0
	}
	return float64(o.FalsePositives) / float64(o.Candidates)
}

type pairKey struct{ i, j int }

// Evaluate runs cfg against d and scores it against BruteForce ground
// truth at cfg.Threshold. strongSim sets the "comfortably above
// threshold" cutoff for StrongPairs/StrongRecall; it should sit above
// the scheme's candidate cutoff (1-Delta)*Threshold so that theory
// predicts near-perfect recall there.
func Evaluate(d *assocmine.Dataset, cfg assocmine.Config, strongSim float64) (Outcome, error) {
	if strongSim < cfg.Threshold {
		return Outcome{}, fmt.Errorf("statstest: strongSim %v below threshold %v", strongSim, cfg.Threshold)
	}
	truth, err := assocmine.SimilarPairs(d, assocmine.Config{
		Algorithm: assocmine.BruteForce,
		Threshold: cfg.Threshold,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return Outcome{}, fmt.Errorf("statstest: ground truth: %w", err)
	}
	res, err := assocmine.SimilarPairs(d, cfg)
	if err != nil {
		return Outcome{}, fmt.Errorf("statstest: %v run: %w", cfg.Algorithm, err)
	}
	found := make(map[pairKey]bool, len(res.Pairs))
	for _, p := range res.Pairs {
		found[pairKey{p.I, p.J}] = true
	}
	o := Outcome{
		TruthPairs:     len(truth.Pairs),
		Found:          len(res.Pairs),
		Candidates:     res.Stats.Candidates,
		FalsePositives: res.Stats.FalsePositives,
	}
	for _, p := range truth.Pairs {
		if p.Similarity < strongSim {
			continue
		}
		o.StrongPairs++
		if found[pairKey{p.I, p.J}] {
			o.StrongFound++
		}
	}
	return o, nil
}
