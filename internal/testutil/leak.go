// Package testutil holds helpers shared by the repository's tests.
package testutil

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the helpers need; declared locally so
// non-test code importing this package does not pull in testing.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// CheckGoroutines snapshots the goroutine count and registers a
// cleanup that fails the test if, after a grace period, more
// goroutines are running than at the snapshot — the symptom of a scan
// fan-out or worker pool leaking on an error or cancellation path.
// Call it first in the test, before any goroutines of interest start.
//
// The check polls because healthy goroutines still need a moment to
// observe channel closes and unwind; only a count that stays elevated
// for the full window is a leak.
func CheckGoroutines(t TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d running, %d at test start\n%s", n, base, buf)
	})
}
