package testutil

import (
	"testing"
	"time"
)

// recordingTB captures Errorf calls and runs cleanups like testing.T.
type recordingTB struct {
	cleanups []func()
	failed   bool
}

func (r *recordingTB) Helper()               {}
func (r *recordingTB) Cleanup(f func())      { r.cleanups = append(r.cleanups, f) }
func (r *recordingTB) Errorf(string, ...any) { r.failed = true }
func (r *recordingTB) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestCheckGoroutinesPassesWhenBalanced(t *testing.T) {
	rec := &recordingTB{}
	CheckGoroutines(rec)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	rec.runCleanups()
	if rec.failed {
		t.Fatal("CheckGoroutines flagged a leak after goroutines exited")
	}
}

func TestCheckGoroutinesToleratesSlowExit(t *testing.T) {
	rec := &recordingTB{}
	CheckGoroutines(rec)
	done := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond) // exits within the grace window
		close(done)
	}()
	rec.runCleanups()
	<-done
	if rec.failed {
		t.Fatal("CheckGoroutines flagged a goroutine that exited inside the grace period")
	}
}
