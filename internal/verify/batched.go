package verify

import (
	"fmt"

	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

// ExactBatched is Exact with a cap on the number of candidate pairs
// whose counters are resident at once. When the candidate set exceeds
// maxResident, verification runs in ceil(n/maxResident) sequential
// passes over the data — the multi-pass fallback the paper alludes to
// ("as long as the number of false positives is not too large (i.e.,
// all of the candidates can fit in main memory)... but one could also
// achieve it by making multiple passes over the data").
func ExactBatched(src matrix.RowSource, cand []pairs.Scored, threshold float64, maxResident int) ([]pairs.Scored, Stats, error) {
	if maxResident <= 0 {
		return nil, Stats{}, fmt.Errorf("verify: maxResident must be positive, got %d", maxResident)
	}
	var out []pairs.Scored
	var total Stats
	total.In = len(cand)
	for lo := 0; lo < len(cand); lo += maxResident {
		hi := lo + maxResident
		if hi > len(cand) {
			hi = len(cand)
		}
		batch, st, err := Exact(src, cand[lo:hi], threshold)
		if err != nil {
			return nil, Stats{}, err
		}
		out = append(out, batch...)
		total.Touches += st.Touches
	}
	total.Out = len(out)
	return out, total, nil
}
