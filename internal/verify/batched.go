package verify

import (
	"fmt"

	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

// ExactBatched is Exact with a cap on the number of candidate pairs
// whose counters are resident at once. When the candidate set exceeds
// maxResident, verification runs in ceil(n/maxResident) sequential
// passes over the data — the multi-pass fallback the paper alludes to
// ("as long as the number of false positives is not too large (i.e.,
// all of the candidates can fit in main memory)... but one could also
// achieve it by making multiple passes over the data"). One counter
// scratch is reused across the batches.
func ExactBatched(src matrix.RowSource, cand []pairs.Scored, threshold float64, maxResident int) ([]pairs.Scored, Stats, error) {
	return ExactBatchedParallel(src, cand, threshold, maxResident, 1)
}

// ExactBatchedParallel stacks batching and parallelism: each batch of
// at most maxResident candidates is verified by ExactParallel, so the
// resident-counter bound and the worker count compose. workers <= 1
// runs the serial multi-pass path.
func ExactBatchedParallel(src matrix.RowSource, cand []pairs.Scored, threshold float64, maxResident, workers int) ([]pairs.Scored, Stats, error) {
	if maxResident <= 0 {
		return nil, Stats{}, fmt.Errorf("verify: maxResident must be positive, got %d", maxResident)
	}
	if threshold < 0 || threshold > 1 {
		return nil, Stats{}, fmt.Errorf("verify: threshold must be in [0,1], got %v", threshold)
	}
	if err := validateCandidates(src.NumCols(), 0, cand); err != nil {
		return nil, Stats{}, err
	}
	var out []pairs.Scored
	var total Stats
	total.In = len(cand)
	sc := new(exactScratch)
	for lo := 0; lo < len(cand); lo += maxResident {
		hi := lo + maxResident
		if hi > len(cand) {
			hi = len(cand)
		}
		var (
			batch []pairs.Scored
			st    Stats
			err   error
		)
		if workers > 1 {
			batch, st, err = exactParallel(src, cand[lo:hi], threshold, workers, nil)
		} else {
			batch, st, err = exactInto(src, cand[lo:hi], threshold, sc)
		}
		if err != nil {
			return nil, Stats{}, err
		}
		out = append(out, batch...)
		total.Touches += st.Touches
	}
	total.Out = len(out)
	return out, total, nil
}
