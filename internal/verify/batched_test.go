package verify

import (
	"errors"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

func TestExactBatchedMatchesExact(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	m := randomMatrix(rng, 200, 25, 0.15)
	var cand []pairs.Scored
	for i := int32(0); i < 25; i++ {
		for j := i + 1; j < 25; j++ {
			cand = append(cand, pairs.Scored{Pair: pairs.Pair{I: i, J: j}})
		}
	}
	want, _, err := Exact(m.Stream(), cand, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxResident := range []int{1, 7, 50, 10000} {
		got, st, err := ExactBatched(m.Stream(), cand, 0.1, maxResident)
		if err != nil {
			t.Fatalf("maxResident=%d: %v", maxResident, err)
		}
		if len(got) != len(want) {
			t.Fatalf("maxResident=%d: %d pairs, want %d", maxResident, len(got), len(want))
		}
		wm := map[pairs.Pair]float64{}
		for _, p := range want {
			wm[p.Pair] = p.Exact
		}
		for _, p := range got {
			if wm[p.Pair] != p.Exact {
				t.Fatalf("maxResident=%d: pair %+v differs", maxResident, p)
			}
		}
		if st.In != len(cand) || st.Out != len(want) {
			t.Errorf("maxResident=%d: stats %+v", maxResident, st)
		}
	}
}

func TestExactBatchedCountsPasses(t *testing.T) {
	m := matrix.MustNew(3, [][]int32{{0, 1}, {0, 1}, {1, 2}, {2}})
	cand := []pairs.Scored{
		{Pair: pairs.Pair{I: 0, J: 1}},
		{Pair: pairs.Pair{I: 1, J: 2}},
		{Pair: pairs.Pair{I: 2, J: 3}},
	}
	cs := &matrix.CountingSource{Src: m.Stream()}
	if _, _, err := ExactBatched(cs, cand, 0, 2); err != nil {
		t.Fatal(err)
	}
	if cs.Passes != 2 {
		t.Errorf("passes = %d, want 2 (3 candidates, 2 resident)", cs.Passes)
	}
}

func TestExactBatchedValidation(t *testing.T) {
	m := matrix.MustNew(1, [][]int32{{0}})
	if _, _, err := ExactBatched(m.Stream(), nil, 0.5, 0); err == nil {
		t.Error("maxResident=0 accepted")
	}
	bad := []pairs.Scored{{Pair: pairs.Pair{I: 0, J: 9}}}
	if _, _, err := ExactBatched(m.Stream(), bad, 0.5, 10); err == nil {
		t.Error("invalid candidate accepted")
	}
}

// erroringSource fails mid-scan to exercise error propagation.
type erroringSource struct {
	rows, cols, failAt int
}

var errInjected = errors.New("injected scan failure")

func (e *erroringSource) NumRows() int { return e.rows }
func (e *erroringSource) NumCols() int { return e.cols }
func (e *erroringSource) Scan(fn func(int, []int32) error) error {
	for r := 0; r < e.rows; r++ {
		if r == e.failAt {
			return errInjected
		}
		if err := fn(r, []int32{0}); err != nil {
			return err
		}
	}
	return nil
}

func TestExactPropagatesSourceError(t *testing.T) {
	src := &erroringSource{rows: 10, cols: 2, failAt: 5}
	cand := []pairs.Scored{{Pair: pairs.Pair{I: 0, J: 1}}}
	if _, _, err := Exact(src, cand, 0.5); !errors.Is(err, errInjected) {
		t.Errorf("err = %v, want injected", err)
	}
	if _, _, err := ExactBatched(src, cand, 0.5, 1); !errors.Is(err, errInjected) {
		t.Errorf("batched err = %v, want injected", err)
	}
}
