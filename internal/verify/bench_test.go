package verify

import (
	"fmt"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/pairs"
)

func BenchmarkExact(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m := randomMatrix(rng, 5000, 300, 0.02)
	var cand []pairs.Scored
	for i := int32(0); i < 300; i += 3 {
		for j := i + 1; j < 300; j += 7 {
			cand = append(cand, pairs.Scored{Pair: pairs.Make(i, j)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Exact(m.Stream(), cand, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactParallel times the sharded verifier on the issue's
// planted 2000x400 workload at several worker counts; workers=1 is the
// serial baseline through the same entry point.
func BenchmarkExactParallel(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m := randomMatrix(rng, 2000, 400, 0.05)
	var cand []pairs.Scored
	for i := int32(0); i < 400; i++ {
		for j := i + 1; j < 400; j += 5 {
			cand = append(cand, pairs.Scored{Pair: pairs.Make(i, j)})
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ExactParallel(m.Stream(), cand, 0.3, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fanout/workers=%d", workers), func(b *testing.B) {
			src := streamOnly{m.Stream()}
			for i := 0; i < b.N; i++ {
				if _, _, err := ExactParallel(src, cand, 0.3, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactPacked times the word-packed popcount kernel on the
// same planted 2000x400 workload, serial and sharded, plus a budgeted
// run that forces multi-batch packing.
func BenchmarkExactPacked(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m := randomMatrix(rng, 2000, 400, 0.05)
	var cand []pairs.Scored
	for i := int32(0); i < 400; i++ {
		for j := i + 1; j < 400; j += 5 {
			cand = append(cand, pairs.Scored{Pair: pairs.Make(i, j)})
		}
	}
	words := int64((m.NumRows() + 63) / 64)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := ExactPacked(m.Stream(), cand, 0.3, PackedOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fanout/workers=%d", workers), func(b *testing.B) {
			src := streamOnly{m.Stream()}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := ExactPacked(src, cand, 0.3, PackedOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("batched/cols=64", func(b *testing.B) {
		opt := PackedOptions{Budget: Budget{Bytes: 64 * words * 8, Dir: b.TempDir()}, Workers: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := ExactPacked(m.Stream(), cand, 0.3, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAllPairs(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m := randomMatrix(rng, 5000, 300, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AllPairs(m, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
