package verify

import (
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/pairs"
)

func BenchmarkExact(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m := randomMatrix(rng, 5000, 300, 0.02)
	var cand []pairs.Scored
	for i := int32(0); i < 300; i += 3 {
		for j := i + 1; j < 300; j += 7 {
			cand = append(cand, pairs.Scored{Pair: pairs.Make(i, j)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Exact(m.Stream(), cand, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllPairs(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m := randomMatrix(rng, 5000, 300, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AllPairs(m, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
