// Budgeted verification: the same exact pruning pass as Exact, but with
// the candidate counter table held in bounded memory. The paper assumes
// "all of the candidates can fit in main memory"; when they do not, the
// pass keeps a bounded table of the recently-touched candidates and,
// whenever the table would exceed its budget, spills it to disk as a
// sorted run of (candidate index, either, both) partial counts. Because
// counters are pure sums and spills happen only at row boundaries, the
// external merge of all runs at the end of the single data pass
// reconstructs exactly the counts the unbounded pass would have
// produced — results are bit-identical to Exact for any budget, worker
// count, or spill schedule.
package verify

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"assocmine/internal/bitpack"
	"assocmine/internal/matrix"
	"assocmine/internal/obs"
	"assocmine/internal/pairs"
)

// Budget bounds the memory of the verification counter table.
type Budget struct {
	// Bytes is the counter-table budget in bytes; <= 0 means unlimited
	// (no spilling). The candidate list itself and the per-column
	// candidate index are inputs and are not charged against it.
	Bytes int64
	// Dir receives the spill runs; "" means the OS temp directory. Run
	// files are deleted before the call returns.
	Dir string
	// Codec selects the run encoding; the zero value is SpillCompressed.
	Codec SpillCodec
}

const (
	// denseCounterBytes is the per-candidate cost of the unbounded
	// scratch (either, both, lastRow int32): when the whole table fits
	// the budget, the plain path is used and nothing spills.
	denseCounterBytes = 12
	// spillEntryBytes is the accounted per-entry cost of the bounded
	// table in spill mode (key, counters, and map overhead).
	spillEntryBytes = 48
	// minSpillEntries keeps pathological budgets from spilling after
	// every row.
	minSpillEntries = 16
)

// ExactBudgeted is Exact with the counter table bounded by budget.Bytes.
// When the table for all candidates fits the budget (or the budget is
// unlimited) it delegates to the plain parallel pass; otherwise it runs
// the single-scan spill strategy: each worker owns a contiguous
// candidate shard and a bounded counter table, spilling sorted runs of
// partial counts to disk and merging them after the pass. Results are
// bit-identical to Exact; Stats reports the spill activity.
func ExactBudgeted(src matrix.RowSource, cand []pairs.Scored, threshold float64, budget Budget, workers int, tick obs.Tick) ([]pairs.Scored, Stats, error) {
	if threshold < 0 || threshold > 1 {
		return nil, Stats{}, fmt.Errorf("verify: threshold must be in [0,1], got %v", threshold)
	}
	if err := validateCandidates(src.NumCols(), 0, cand); err != nil {
		return nil, Stats{}, err
	}
	if budget.Bytes <= 0 || int64(len(cand))*denseCounterBytes <= budget.Bytes {
		return exactParallel(src, cand, threshold, workers, tick)
	}
	out, st, err := exactSpill(src, cand, threshold, budget, workers)
	if err == nil && tick != nil {
		tick(int64(len(cand)), int64(len(cand)))
	}
	return out, st, err
}

// spillCounter is one bounded-table entry. lastRowP1 stores row+1 so
// the zero value means "never touched" (row ids start at 0).
type spillCounter struct {
	either, both, lastRowP1 int32
}

// spillEntry is one aggregated (or in-memory) run record.
type spillEntry struct {
	idx          int32
	either, both int32
}

// exactSpill runs the bounded-memory strategy. Candidates are sharded
// contiguously across workers exactly like exactParallel, so
// concatenating shard outputs restores the serial emission order.
func exactSpill(src matrix.RowSource, cand []pairs.Scored, threshold float64, budget Budget, workers int) ([]pairs.Scored, Stats, error) {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxUseful := (len(cand) + minShardCandidates - 1) / minShardCandidates; workers > maxUseful {
		workers = maxUseful
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (len(cand) + workers - 1) / workers
	var shards [][2]int
	for lo := 0; lo < len(cand); lo += chunk {
		hi := lo + chunk
		if hi > len(cand) {
			hi = len(cand)
		}
		shards = append(shards, [2]int{lo, hi})
	}
	share := budget.Bytes / int64(len(shards))
	maxEntries := int(share / spillEntryBytes)
	if maxEntries < minSpillEntries {
		maxEntries = minSpillEntries
	}

	m := src.NumCols()
	ws := make([]*budgetWorker, len(shards))
	for s, sh := range shards {
		ws[s] = newBudgetWorker(m, cand[sh[0]:sh[1]], threshold, maxEntries, budget.Dir, budget.Codec)
	}
	defer func() {
		for _, w := range ws {
			w.cleanup()
		}
	}()

	var streamed int64
	if len(ws) == 1 {
		// Serial: scan rows straight into the single worker.
		w := ws[0]
		err := src.Scan(func(row int, cols []int32) error {
			return w.processRow(int32(row), cols)
		})
		if err != nil {
			return nil, Stats{}, err
		}
	} else {
		consumers := make([]func(<-chan *matrix.Shard), len(ws))
		for s, w := range ws {
			w := w
			consumers[s] = func(ch <-chan *matrix.Shard) {
				for sh := range ch {
					if w.err != nil {
						continue // drain; the scan cannot be aborted per-worker
					}
					for i := 0; i < sh.Len(); i++ {
						r, cols := sh.Row(i)
						if w.processRow(r, cols) != nil {
							break
						}
					}
				}
			}
		}
		var err error
		streamed, err = matrix.FanOutShards(src, 0, 0, consumers)
		if err != nil {
			return nil, Stats{}, err
		}
	}

	total := Stats{In: len(cand), Shards: streamed}
	out := make([]pairs.Scored, 0, len(cand)/4)
	for _, w := range ws {
		shardOut, err := w.finish()
		if err != nil {
			return nil, Stats{}, err
		}
		out = append(out, shardOut...)
		total.Touches += w.st.Touches
		total.SpillRuns += w.st.SpillRuns
		total.SpillBytes += w.st.SpillBytes
		total.SpillBytesRaw += w.st.SpillBytesRaw
		total.SpillBytesCompressed += w.st.SpillBytesCompressed
	}
	total.Out = len(out)
	return out, total, nil
}

// budgetWorker verifies one contiguous candidate shard with a bounded
// counter table.
type budgetWorker struct {
	cand       []pairs.Scored
	threshold  float64
	pairsOf    [][]int32
	table      map[int32]spillCounter
	maxEntries int
	dir        string
	codec      SpillCodec
	runs       []*os.File
	st         Stats
	err        error
}

func newBudgetWorker(m int, cand []pairs.Scored, threshold float64, maxEntries int, dir string, codec SpillCodec) *budgetWorker {
	w := &budgetWorker{
		cand:       cand,
		threshold:  threshold,
		pairsOf:    make([][]int32, m),
		table:      make(map[int32]spillCounter, maxEntries),
		maxEntries: maxEntries,
		dir:        dir,
		codec:      codec,
	}
	for idx, p := range cand {
		w.pairsOf[p.I] = append(w.pairsOf[p.I], int32(idx))
		w.pairsOf[p.J] = append(w.pairsOf[p.J], int32(idx))
	}
	return w
}

// processRow folds one row into the table, spilling afterwards if the
// row pushed the table over budget. Spills happen only at row
// boundaries: within a row the second-endpoint detection needs the
// first endpoint's entry resident, so the table may transiently exceed
// the bound by the candidates one row touches.
func (w *budgetWorker) processRow(r int32, cols []int32) error {
	if w.err != nil {
		return w.err
	}
	for _, c := range cols {
		for _, idx := range w.pairsOf[c] {
			w.st.Touches++
			e := w.table[idx]
			if e.lastRowP1 == r+1 {
				e.both++
			} else {
				e.lastRowP1 = r + 1
				e.either++
			}
			w.table[idx] = e
		}
	}
	if len(w.table) > w.maxEntries {
		if err := w.spill(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// spill writes the table as one sorted run in the configured codec and
// resets it. The run file joins w.runs only on success; any write
// failure deletes it on the spot, so cleanup never has an orphan to
// miss.
func (w *budgetWorker) spill() (err error) {
	entries := w.sortedEntries()
	f, err := os.CreateTemp(w.dir, "assocmine-spill-*.run")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	bw := bufio.NewWriter(f)
	var written, raw int64
	if w.codec == SpillRaw {
		written, err = writeRawRun(bw, entries)
		raw = written
	} else {
		written, raw, err = writeCompressedRun(bw, entries)
	}
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	w.runs = append(w.runs, f)
	w.st.SpillRuns++
	w.st.SpillBytes += written
	w.st.SpillBytesRaw += raw
	if w.codec != SpillRaw {
		w.st.SpillBytesCompressed += written
	}
	w.table = make(map[int32]spillCounter, w.maxEntries)
	return nil
}

// sortedEntries snapshots the table in increasing candidate order.
func (w *budgetWorker) sortedEntries() []spillEntry {
	entries := make([]spillEntry, 0, len(w.table))
	for idx, e := range w.table {
		entries = append(entries, spillEntry{idx: idx, either: e.either, both: e.both})
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].idx < entries[b].idx })
	return entries
}

// finish merges the in-memory table with every spilled run and emits
// the surviving pairs in candidate order.
func (w *budgetWorker) finish() ([]pairs.Scored, error) {
	if w.err != nil {
		return nil, w.err
	}
	resident := w.sortedEntries()
	out := make([]pairs.Scored, 0, len(w.cand)/4)
	emit := func(e spillEntry) {
		if e.either == 0 {
			return
		}
		if s := float64(e.both) / float64(e.either); s >= w.threshold {
			p := w.cand[e.idx]
			p.Exact = s
			out = append(out, p)
		}
	}
	if len(w.runs) == 0 {
		for _, e := range resident {
			emit(e)
		}
		w.st.Out = len(out)
		return out, nil
	}

	cursors := make([]*runCursor, 0, len(w.runs)+1)
	for _, f := range w.runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		cursors = append(cursors, newRunCursor(bufio.NewReader(f), w.codec, len(w.cand)))
	}
	cursors = append(cursors, &runCursor{mem: resident})
	h := make(cursorHeap, 0, len(cursors))
	for _, c := range cursors {
		ok, err := c.advance()
		if err != nil {
			return nil, err
		}
		if ok {
			h = append(h, c)
		}
	}
	h.init()
	acc := spillEntry{idx: -1}
	for len(h) > 0 {
		c := h[0]
		if c.cur.idx != acc.idx {
			emit(acc)
			acc = c.cur
		} else {
			acc.either += c.cur.either
			acc.both += c.cur.both
		}
		ok, err := c.advance()
		if err != nil {
			return nil, err
		}
		if ok {
			h.fix(0)
		} else {
			h.pop()
		}
	}
	emit(acc)
	w.st.Out = len(out)
	return out, nil
}

// cleanup closes and deletes the run files.
func (w *budgetWorker) cleanup() {
	for _, f := range w.runs {
		name := f.Name()
		f.Close()
		os.Remove(name)
	}
	w.runs = nil
}

// runCursor streams one sorted run — file-backed in either spill codec
// or the in-memory remainder of the table.
type runCursor struct {
	br    *bufio.Reader
	codec SpillCodec
	mem   []spillEntry
	pos   int
	cur   spillEntry

	// Compressed-run decode state: the current block, the bit reader
	// (persistent across blocks, re-aligned at each boundary), the
	// running previous index of the delta chain, and the candidate count
	// bounding decoded indices.
	blk     []spillEntry
	blkPos  int
	pr      *bitpack.Reader
	prevIdx int64
	nCand   int32
}

// newRunCursor returns a cursor over one file-backed run. nCand bounds
// the candidate indices a compressed run may decode.
func newRunCursor(br *bufio.Reader, codec SpillCodec, nCand int) *runCursor {
	return &runCursor{br: br, codec: codec, prevIdx: -1, nCand: int32(nCand)}
}

// advance loads the next entry, reporting whether one was available.
func (c *runCursor) advance() (bool, error) {
	if c.br == nil {
		if c.pos >= len(c.mem) {
			return false, nil
		}
		c.cur = c.mem[c.pos]
		c.pos++
		return true, nil
	}
	if c.codec != SpillRaw {
		if c.blkPos >= len(c.blk) {
			switch err := c.readSpillBlock(); {
			case err == io.EOF:
				return false, nil
			case err != nil:
				return false, err
			}
		}
		c.cur = c.blk[c.blkPos]
		c.blkPos++
		return true, nil
	}
	idx, err := binary.ReadUvarint(c.br)
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("verify: reading spill run: %w", err)
	}
	either, err := binary.ReadUvarint(c.br)
	if err != nil {
		return false, fmt.Errorf("verify: reading spill run: %w", err)
	}
	both, err := binary.ReadUvarint(c.br)
	if err != nil {
		return false, fmt.Errorf("verify: reading spill run: %w", err)
	}
	c.cur = spillEntry{idx: int32(uint32(idx)), either: int32(either), both: int32(both)}
	return true, nil
}

// cursorHeap is a minimal binary min-heap of cursors by current index.
type cursorHeap []*runCursor

func (h cursorHeap) less(a, b int) bool { return h[a].cur.idx < h[b].cur.idx }

func (h cursorHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.fix(i)
	}
}

func (h cursorHeap) fix(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

func (h *cursorHeap) pop() {
	old := *h
	old[0] = old[len(old)-1]
	*h = old[:len(old)-1]
	h.fix(0)
}
