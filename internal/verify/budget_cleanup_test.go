package verify

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/testutil"
)

// countSpillFiles returns how many spill run files remain in dir.
func countSpillFiles(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "assocmine-spill-*.run"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// TestBudgetWorkerCleanupAfterMergeFailure is the regression test for
// spill-file leaks: force spills, corrupt a run so the k-way merge
// fails mid-way, and verify cleanup leaves the spill directory empty.
func TestBudgetWorkerCleanupAfterMergeFailure(t *testing.T) {
	rng := hashing.NewSplitMix64(23)
	m := randomMatrix(rng, 400, 40, 0.2)
	cand := allPairsCandidates(40)
	dir := t.TempDir()
	w := newBudgetWorker(40, cand, 0.01, minSpillEntries, dir, SpillCompressed)
	err := m.Stream().Scan(func(row int, cols []int32) error {
		return w.processRow(int32(row), cols)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.runs) < 2 {
		t.Fatalf("only %d spill runs; fixture too small to force the merge", len(w.runs))
	}
	// Chop the first run mid-entry so the merge hits a decode error.
	if err := os.Truncate(w.runs[0].Name(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.finish(); err == nil {
		t.Fatal("finish succeeded over a corrupted run")
	}
	w.cleanup()
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files remain after cleanup", n)
	}
}

// errAfterSource delivers rows until failAt, then fails the scan — a
// permanent mid-pass fault.
type errAfterSource struct {
	src    matrix.RowSource
	failAt int
}

var errMidScan = errors.New("synthetic mid-scan failure")

func (e *errAfterSource) NumRows() int { return e.src.NumRows() }
func (e *errAfterSource) NumCols() int { return e.src.NumCols() }
func (e *errAfterSource) Scan(fn func(row int, cols []int32) error) error {
	return e.src.Scan(func(row int, cols []int32) error {
		if row >= e.failAt {
			return errMidScan
		}
		return fn(row, cols)
	})
}

// TestExactBudgetedCleanupOnScanError: a scan failing after enough rows
// to force spills must propagate the error and leave zero run files,
// at both the serial and fan-out worker counts.
func TestExactBudgetedCleanupOnScanError(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := hashing.NewSplitMix64(29)
	m := randomMatrix(rng, 500, 40, 0.2)
	cand := allPairsCandidates(40)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			src := &errAfterSource{src: m.Stream(), failAt: 400}
			_, _, err := ExactBudgeted(src, cand, 0.01, Budget{Bytes: 4096, Dir: dir}, workers, nil)
			if !errors.Is(err, errMidScan) {
				t.Fatalf("err = %v, want the mid-scan failure", err)
			}
			if n := countSpillFiles(t, dir); n != 0 {
				t.Fatalf("%d spill files remain after failed scan", n)
			}
		})
	}
}

// TestExactBudgetedSpillDirMissing: an unusable spill directory must
// surface as an error from the first spill, not a panic or a hang, and
// obviously leave nothing behind.
func TestExactBudgetedSpillDirMissing(t *testing.T) {
	rng := hashing.NewSplitMix64(31)
	m := randomMatrix(rng, 400, 40, 0.2)
	cand := allPairsCandidates(40)
	dir := filepath.Join(t.TempDir(), "does", "not", "exist")
	_, _, err := ExactBudgeted(m.Stream(), cand, 0.01, Budget{Bytes: 4096, Dir: dir}, 1, nil)
	if err == nil {
		t.Fatal("ExactBudgeted succeeded with a nonexistent spill dir")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want to wrap fs.ErrNotExist", err)
	}
}
