package verify

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/pairs"
)

// TestExactBudgetedMatchesExact: a budget far below the dense table
// forces spills, and the merged result must still be bit-identical to
// the unbounded serial pass at every worker count.
func TestExactBudgetedMatchesExact(t *testing.T) {
	rng := hashing.NewSplitMix64(19)
	m := randomMatrix(rng, 600, 60, 0.1)
	cand := allPairsCandidates(60) // 1770 candidates: dense table ~21 KB
	want, wantSt, err := Exact(m.Stream(), cand, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no surviving pairs; test would be vacuous")
	}
	budget := Budget{Bytes: 4 << 10, Dir: t.TempDir()}
	for _, workers := range []int{1, 2, 4, -1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, st, err := ExactBudgeted(m.Stream(), cand, 0.03, budget, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("output differs from Exact: %d pairs vs %d", len(got), len(want))
			}
			if st.SpillRuns <= 0 || st.SpillBytes <= 0 {
				t.Fatalf("no spill with budget %d: %+v", budget.Bytes, st)
			}
			if st.In != wantSt.In || st.Out != wantSt.Out || st.Touches != wantSt.Touches {
				t.Fatalf("stats %+v, want In/Out/Touches of %+v", st, wantSt)
			}
		})
	}
}

// TestExactBudgetedDeterministic: same inputs, same spill schedule,
// same byte counts — runs are sorted before writing.
func TestExactBudgetedDeterministic(t *testing.T) {
	rng := hashing.NewSplitMix64(23)
	m := randomMatrix(rng, 400, 40, 0.15)
	cand := allPairsCandidates(40)
	budget := Budget{Bytes: 2 << 10, Dir: t.TempDir()}
	_, st1, err := ExactBudgeted(m.Stream(), cand, 0.1, budget, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := ExactBudgeted(m.Stream(), cand, 0.1, budget, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("spill accounting not deterministic: %+v vs %+v", st1, st2)
	}
	if st1.SpillRuns == 0 {
		t.Fatal("expected spills")
	}
}

// TestExactBudgetedFitsInBudget: when the dense table fits, the call
// delegates to the plain pass and nothing touches disk.
func TestExactBudgetedFitsInBudget(t *testing.T) {
	rng := hashing.NewSplitMix64(29)
	m := randomMatrix(rng, 300, 30, 0.15)
	cand := allPairsCandidates(30)
	want, wantSt, err := Exact(m.Stream(), cand, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, bytes := range []int64{0, -1, 1 << 30} {
		got, st, err := ExactBudgeted(m.Stream(), cand, 0.05, Budget{Bytes: bytes}, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("bytes=%d: output differs from Exact", bytes)
		}
		if st.SpillRuns != 0 || st.SpillBytes != 0 {
			t.Fatalf("bytes=%d: unexpected spill: %+v", bytes, st)
		}
		if st.Touches != wantSt.Touches {
			t.Fatalf("bytes=%d: touches %d, want %d", bytes, st.Touches, wantSt.Touches)
		}
	}
}

func TestExactBudgetedEmptyAndErrors(t *testing.T) {
	rng := hashing.NewSplitMix64(31)
	m := randomMatrix(rng, 50, 10, 0.2)
	budget := Budget{Bytes: 256}
	out, st, err := ExactBudgeted(m.Stream(), nil, 0.5, budget, 4, nil)
	if err != nil || out != nil || st.In != 0 || st.Out != 0 {
		t.Fatalf("empty list: got %v, %+v, %v", out, st, err)
	}
	if _, _, err := ExactBudgeted(m.Stream(), nil, 1.5, budget, 1, nil); err == nil {
		t.Error("bad threshold accepted")
	}
	bad := []pairs.Scored{{Pair: pairs.Pair{I: 0, J: 99}}}
	if _, _, err := ExactBudgeted(m.Stream(), bad, 0.5, budget, 1, nil); err == nil {
		t.Error("out-of-range candidate accepted")
	}
	self := []pairs.Scored{{Pair: pairs.Pair{I: 3, J: 3}}}
	if _, _, err := ExactBudgeted(m.Stream(), self, 0.5, budget, 1, nil); err == nil {
		t.Error("self pair accepted")
	}
}

func TestExactBudgetedPropagatesScanError(t *testing.T) {
	boom := errors.New("boom")
	cand := allPairsCandidates(8)
	for _, workers := range []int{1, 4} {
		src := &failingSource{rows: 100, cols: 8, failAt: 40, err: boom}
		_, _, err := ExactBudgeted(src, cand, 0.5, Budget{Bytes: 256}, workers, nil)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: want scan error, got %v", workers, err)
		}
	}
}
