// Packed verification: the same exact pruning pass as Exact, computed
// over word-packed bit-columns instead of per-row counter scatter. The
// columns referenced by the candidate list — typically a small fraction
// of the matrix — are packed into a dense arena of ⌈n/64⌉-word bitmaps,
// and each candidate's |C_i ∩ C_j| and |C_i ∪ C_j| fall out of one
// fused AND/OR popcount sweep (bitset.AndOrCounts). The counts are the
// same integers the scalar counters accumulate, divided by the same
// float64 division, and candidates are emitted in the same order, so
// results are bit-identical to Exact for any batch size, worker count
// or data-delivery strategy.
//
// Memory is bounded by batching: when a Budget is set, candidates are
// split into contiguous batches whose distinct endpoint columns fit the
// arena budget, with one packing pass per batch. When even two columns
// do not fit, the pass falls back to ExactBudgeted wholesale — the
// spilling scalar path is the bounded-memory strategy of last resort.
package verify

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"assocmine/internal/bitset"
	"assocmine/internal/matrix"
	"assocmine/internal/obs"
	"assocmine/internal/pairs"
)

// Kernel selects the counting strategy of the exact pruning pass.
type Kernel int

const (
	// KernelAuto picks the packed kernel when AutoPack approves the
	// workload, the scalar kernel otherwise. The zero value, so packed
	// verification is the default wherever it is safe.
	KernelAuto Kernel = iota
	// KernelPacked forces the word-packed popcount kernel (batching
	// against any budget).
	KernelPacked
	// KernelScalar forces the per-row counter-scatter kernel.
	KernelScalar
)

// String returns the flag spelling of the kernel.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelPacked:
		return "packed"
	case KernelScalar:
		return "scalar"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ParseKernel converts a flag spelling into a Kernel; the empty string
// means auto.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "packed":
		return KernelPacked, nil
	case "scalar":
		return KernelScalar, nil
	default:
		return 0, fmt.Errorf("verify: unknown kernel %q (want auto, packed or scalar)", s)
	}
}

const (
	// minPackedCandidates is the smallest candidate list worth an arena:
	// below it the packing pass dominates the popcount savings.
	minPackedCandidates = 16
	// maxAutoArenaBytes caps the arena Auto will build when no budget
	// constrains it; explicit KernelPacked has no cap (it batches).
	maxAutoArenaBytes = 256 << 20
	// packedTickChunk is the pair-loop granularity of context checks and
	// progress ticks.
	packedTickChunk = 256
)

// AutoPack reports whether the Auto kernel selects the packed pass for
// verifying cand over an n×m source under budgetBytes (<= 0 means
// unlimited). It is a function of (n, m, cand, budgetBytes) only —
// never the source type — so the in-memory and streamed runs of one
// job always select the same kernel and stay bit-identical. Under a
// budget Auto requires the whole arena to fit: a budget is a request
// for the bounded-memory machinery, and a packed pass that fits needs
// none, while one that would batch should instead leave the budget to
// the spilling scalar path it was written for.
func AutoPack(n, m int, cand []pairs.Scored, budgetBytes int64) bool {
	if len(cand) < minPackedCandidates || n <= 0 || m <= 0 {
		return false
	}
	words := int64((n + 63) / 64)
	seen := make([]bool, m)
	distinct := int64(0)
	for _, p := range cand {
		if int(p.I) < m && p.I >= 0 && !seen[p.I] {
			seen[p.I] = true
			distinct++
		}
		if int(p.J) < m && p.J >= 0 && !seen[p.J] {
			seen[p.J] = true
			distinct++
		}
	}
	arena := distinct * words * 8
	if budgetBytes > 0 {
		return arena <= budgetBytes
	}
	return arena <= maxAutoArenaBytes
}

// PackedOptions parameterises ExactPacked.
type PackedOptions struct {
	// Budget bounds the bit-column arena in bytes; Bytes <= 0 means
	// unlimited (a single batch). Dir is only used by the ExactBudgeted
	// fallback when even two packed columns exceed the budget.
	Budget Budget
	// Workers fans out the packing scan and the per-batch pair sweep;
	// <= 1 runs serial, negative means GOMAXPROCS.
	Workers int
	// Context cancels the pass at batch and pair-chunk granularity; nil
	// runs to completion. Scans additionally observe any cancellation
	// wrapper on src itself.
	Context context.Context
	// Tick, when non-nil, receives (candidate pairs verified, total
	// candidates) at chunk granularity, possibly from worker goroutines.
	Tick obs.Tick
}

// ExactPacked is Exact computed with the packed popcount kernel:
// bit-identical results and Touches for any configuration, with
// PackedWords/PackedBatches reporting the kernel's work. Sources
// implementing matrix.ColumnLister are packed directly from their
// column lists without a row scan; other sources pay one sequential
// scan per batch (fanned out to workers when allowed).
func ExactPacked(src matrix.RowSource, cand []pairs.Scored, threshold float64, opt PackedOptions) ([]pairs.Scored, Stats, error) {
	if threshold < 0 || threshold > 1 {
		return nil, Stats{}, fmt.Errorf("verify: threshold must be in [0,1], got %v", threshold)
	}
	m := src.NumCols()
	if err := validateCandidates(m, 0, cand); err != nil {
		return nil, Stats{}, err
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	st := Stats{In: len(cand)}
	if len(cand) == 0 {
		return nil, st, nil
	}
	workers := opt.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := int64(len(cand))
	n := src.NumRows()
	words := (n + 63) / 64
	if words == 0 {
		// No rows: every union is empty and the scalar pass emits
		// nothing, without scanning.
		if opt.Tick != nil {
			opt.Tick(total, total)
		}
		return make([]pairs.Scored, 0), st, nil
	}
	maxCols := m
	if opt.Budget.Bytes > 0 {
		mc := opt.Budget.Bytes / (int64(words) * 8)
		if mc < 2 {
			// The budget cannot hold even one candidate's two columns;
			// the spilling scalar path is the bounded-memory strategy.
			return ExactBudgeted(src, cand, threshold, opt.Budget, opt.Workers, opt.Tick)
		}
		if mc < int64(maxCols) {
			maxCols = int(mc)
		}
	}

	slot := make([]int32, m)
	for i := range slot {
		slot[i] = -1
	}
	var cols []int32
	var arena []uint64
	var colOnes []int64
	out := make([]pairs.Scored, 0, len(cand)/4)
	var done atomic.Int64

	for batchStart := 0; batchStart < len(cand); {
		if err := ctx.Err(); err != nil {
			return nil, Stats{}, err
		}
		// Greedy contiguous batch: maxCols >= 2 guarantees progress,
		// since one candidate claims at most two arena slots.
		cols = cols[:0]
		batchEnd := batchStart
		for ; batchEnd < len(cand); batchEnd++ {
			p := cand[batchEnd]
			need := 0
			if slot[p.I] < 0 {
				need++
			}
			if slot[p.J] < 0 {
				need++
			}
			if len(cols)+need > maxCols {
				break
			}
			if slot[p.I] < 0 {
				slot[p.I] = int32(len(cols))
				cols = append(cols, p.I)
			}
			if slot[p.J] < 0 {
				slot[p.J] = int32(len(cols))
				cols = append(cols, p.J)
			}
		}
		need := len(cols) * words
		if cap(arena) < need {
			arena = make([]uint64, need)
		} else {
			arena = arena[:need]
			for i := range arena {
				arena[i] = 0
			}
		}
		shards, err := packColumns(src, slot, cols, arena, words, workers)
		st.Shards += shards
		if err != nil {
			return nil, Stats{}, err
		}
		// Per-slot popcounts, once per batch: colOnes[slot[I]] +
		// colOnes[slot[J]] is exactly the per-row counter updates the
		// scalar pass charges candidate (I,J) to Touches.
		if cap(colOnes) < len(cols) {
			colOnes = make([]int64, len(cols))
		}
		colOnes = colOnes[:len(cols)]
		for s := range cols {
			colOnes[s] = int64(bitset.CountWords(arena[s*words : (s+1)*words]))
		}

		batch := cand[batchStart:batchEnd]
		pw := workers
		if maxUseful := (len(batch) + minShardCandidates - 1) / minShardCandidates; pw > maxUseful {
			pw = maxUseful
		}
		if pw <= 1 {
			o, touches, err := packedSweep(ctx, batch, arena, slot, colOnes, words, threshold, &done, total, opt.Tick)
			if err != nil {
				return nil, Stats{}, err
			}
			st.Touches += touches
			out = append(out, o...)
		} else {
			// Contiguous shards, concatenated in order: same emission
			// order as the serial sweep.
			chunk := (len(batch) + pw - 1) / pw
			var shards [][2]int
			for lo := 0; lo < len(batch); lo += chunk {
				hi := lo + chunk
				if hi > len(batch) {
					hi = len(batch)
				}
				shards = append(shards, [2]int{lo, hi})
			}
			outs := make([][]pairs.Scored, len(shards))
			touches := make([]int64, len(shards))
			errs := make([]error, len(shards))
			var wg sync.WaitGroup
			for s, sh := range shards {
				wg.Add(1)
				go func(s, lo, hi int) {
					defer wg.Done()
					outs[s], touches[s], errs[s] = packedSweep(ctx, batch[lo:hi], arena, slot, colOnes, words, threshold, &done, total, opt.Tick)
				}(s, sh[0], sh[1])
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, Stats{}, err
				}
			}
			for s := range outs {
				st.Touches += touches[s]
				out = append(out, outs[s]...)
			}
		}
		st.PackedWords += int64(len(batch)) * int64(words)
		st.PackedBatches++
		for _, c := range cols {
			slot[c] = -1
		}
		batchStart = batchEnd
	}
	st.Out = len(out)
	if opt.Tick != nil {
		opt.Tick(total, total)
	}
	return out, st, nil
}

// packedSweep verifies one contiguous candidate slice against the
// packed arena, emitting survivors in order. done/tick report progress
// in candidate pairs across the whole call (done is shared by all
// sweeps); ctx is checked every packedTickChunk pairs.
func packedSweep(ctx context.Context, batch []pairs.Scored, arena []uint64, slot []int32, colOnes []int64, words int, threshold float64, done *atomic.Int64, total int64, tick obs.Tick) ([]pairs.Scored, int64, error) {
	out := make([]pairs.Scored, 0, len(batch)/4)
	var touches int64
	for idx, p := range batch {
		si, sj := int(slot[p.I]), int(slot[p.J])
		a := arena[si*words : (si+1)*words]
		b := arena[sj*words : (sj+1)*words]
		and, or := bitset.AndOrCounts(a, b)
		touches += colOnes[si] + colOnes[sj]
		if or != 0 {
			if s := float64(and) / float64(or); s >= threshold {
				p.Exact = s
				out = append(out, p)
			}
		}
		if (idx+1)%packedTickChunk == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			if tick != nil {
				tick(done.Add(packedTickChunk), total)
			}
		}
	}
	done.Add(int64(len(batch) % packedTickChunk))
	return out, touches, nil
}

// packColumns fills the arena with the bit-columns of cols: bit (slot,
// row) is set iff the row has a 1 in the column assigned to that slot.
// Strategy by source capability, fastest first: direct column lists
// (matrix.ColumnLister — no row scan at all), fused decode-to-bitmap
// (matrix.BitmapFiller — file sources, compressed or not, unpack
// postings straight into the arena in one pass), one concurrent scan
// per worker over disjoint slot ranges (in-memory sources), a single
// fanned-out sequential scan with slot-range consumers (streaming
// sources, the one pass the disk-resident setting allows), or a plain
// serial scan. Workers write disjoint arena regions in every strategy,
// so no synchronisation is needed. Returns the shards broadcast by the
// fan-out strategy (0 otherwise).
func packColumns(src matrix.RowSource, slot []int32, cols []int32, arena []uint64, words, workers int) (int64, error) {
	if cl, ok := src.(matrix.ColumnLister); ok {
		for s, c := range cols {
			base := s * words
			for _, r := range cl.ColumnRows(int(c)) {
				arena[base+int(r>>6)] |= 1 << (uint(r) & 63)
			}
		}
		return 0, nil
	}
	if bf, ok := src.(matrix.BitmapFiller); ok && bf.CanFillColumnBits() {
		// Decode fusion: the source unpacks its own postings straight
		// into the arena — one sequential pass, no row slices, no shard
		// broadcast — so compressed and uncompressed file sources feed
		// the packed kernel at decode speed.
		return 0, bf.FillColumnBits(slot, arena, words)
	}
	if workers > len(cols) {
		workers = len(cols)
	}
	if cs, ok := src.(matrix.ConcurrentSource); ok && cs.ConcurrentScan() && workers > 1 {
		chunk := (len(cols) + workers - 1) / workers
		var ranges [][2]int
		for lo := 0; lo < len(cols); lo += chunk {
			hi := lo + chunk
			if hi > len(cols) {
				hi = len(cols)
			}
			ranges = append(ranges, [2]int{lo, hi})
		}
		errs := make([]error, len(ranges))
		var wg sync.WaitGroup
		for s, rg := range ranges {
			wg.Add(1)
			go func(s, lo, hi int) {
				defer wg.Done()
				lo32, hi32 := int32(lo), int32(hi)
				errs[s] = src.Scan(func(row int, rcols []int32) error {
					w := row >> 6
					bit := uint64(1) << (uint(row) & 63)
					for _, c := range rcols {
						if sl := slot[c]; sl >= lo32 && sl < hi32 {
							arena[int(sl)*words+w] |= bit
						}
					}
					return nil
				})
			}(s, rg[0], rg[1])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return 0, nil
	}
	if workers > 1 {
		chunk := (len(cols) + workers - 1) / workers
		var consumers []func(<-chan *matrix.Shard)
		for lo := 0; lo < len(cols); lo += chunk {
			hi := lo + chunk
			if hi > len(cols) {
				hi = len(cols)
			}
			lo32, hi32 := int32(lo), int32(hi)
			consumers = append(consumers, func(ch <-chan *matrix.Shard) {
				for b := range ch {
					for i := 0; i < b.Len(); i++ {
						r, rcols := b.Row(i)
						w := int(r) >> 6
						bit := uint64(1) << (uint(r) & 63)
						for _, c := range rcols {
							if sl := slot[c]; sl >= lo32 && sl < hi32 {
								arena[int(sl)*words+w] |= bit
							}
						}
					}
				}
			})
		}
		return matrix.FanOutShards(src, 0, 0, consumers)
	}
	return 0, src.Scan(func(row int, rcols []int32) error {
		w := row >> 6
		bit := uint64(1) << (uint(row) & 63)
		for _, c := range rcols {
			if sl := slot[c]; sl >= 0 {
				arena[int(sl)*words+w] |= bit
			}
		}
		return nil
	})
}
