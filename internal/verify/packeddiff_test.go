package verify

import (
	"context"
	"reflect"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

// randomCandidates draws count pairs (duplicates allowed — the scalar
// pass accepts them, so the packed pass must too) over cols columns.
func randomCandidates(rng *hashing.SplitMix64, cols, count int) []pairs.Scored {
	cand := make([]pairs.Scored, 0, count)
	for len(cand) < count {
		i := int32(rng.Intn(cols))
		j := int32(rng.Intn(cols))
		if i == j {
			continue
		}
		cand = append(cand, pairs.Scored{Pair: pairs.Make(i, j), Estimate: rng.Float64()})
	}
	return cand
}

// comparePacked runs ExactPacked under opt and requires its output and
// shared Stats to match the scalar reference bit for bit.
func comparePacked(t *testing.T, src matrix.RowSource, cand []pairs.Scored, threshold float64, opt PackedOptions, wantOut []pairs.Scored, wantStats Stats) Stats {
	t.Helper()
	got, st, err := ExactPacked(src, cand, threshold, opt)
	if err != nil {
		t.Fatalf("ExactPacked: %v", err)
	}
	if !reflect.DeepEqual(got, wantOut) {
		t.Fatalf("packed output differs from scalar:\npacked %v\nscalar %v", got, wantOut)
	}
	if st.In != wantStats.In || st.Out != wantStats.Out || st.Touches != wantStats.Touches {
		t.Fatalf("packed Stats differ: packed {In:%d Out:%d Touches:%d} scalar {In:%d Out:%d Touches:%d}",
			st.In, st.Out, st.Touches, wantStats.In, wantStats.Out, wantStats.Touches)
	}
	return st
}

// TestPackedMatchesScalar: ExactPacked must be bit-identical to Exact —
// output, order, Exact fields, Touches — across densities, thresholds,
// source capabilities (column lists, concurrent scans, stream-only
// fan-out) and worker counts.
func TestPackedMatchesScalar(t *testing.T) {
	rng := hashing.NewSplitMix64(7)
	for _, tc := range []struct {
		rows, cols int
		density    float64
		candidates int
		threshold  float64
	}{
		{300, 40, 0.1, 200, 0.3},
		{257, 25, 0.25, 100, 0},
		{64, 10, 0.5, 45, 0.6},
		{1, 8, 0.9, 20, 0.5},
		{100, 30, 0.02, 60, 0.1},
	} {
		m := randomMatrix(rng, tc.rows, tc.cols, tc.density)
		cand := randomCandidates(rng, tc.cols, tc.candidates)
		want, wantStats, err := Exact(m.Stream(), cand, tc.threshold)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			opt := PackedOptions{Workers: workers}
			// m.Stream() is a ColumnLister: packed straight from the
			// column lists. streamOnly hides every capability, forcing
			// the scan strategies (serial at 1 worker, shard fan-out
			// above).
			st := comparePacked(t, m.Stream(), cand, tc.threshold, opt, want, wantStats)
			if st.PackedBatches != 1 {
				t.Errorf("%dx%d: unbudgeted pass used %d batches, want 1", tc.rows, tc.cols, st.PackedBatches)
			}
			if st.PackedWords == 0 {
				t.Errorf("%dx%d: PackedWords not reported", tc.rows, tc.cols)
			}
			st = comparePacked(t, streamOnly{m.Stream()}, cand, tc.threshold, opt, want, wantStats)
			if workers > 1 && len(cand) >= 2*minShardCandidates && st.Shards == 0 {
				t.Errorf("%dx%d workers=%d: stream-only packing reported no shards", tc.rows, tc.cols, workers)
			}
		}
	}
}

// TestPackedMatchesBudgetedAndParallel: the packed pass must agree with
// the other scalar entry points too, with and without batching.
func TestPackedMatchesBudgetedAndParallel(t *testing.T) {
	rng := hashing.NewSplitMix64(11)
	m := randomMatrix(rng, 400, 30, 0.15)
	cand := randomCandidates(rng, 30, 150)
	const threshold = 0.2

	want, wantStats, err := Exact(m.Stream(), cand, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if par, pst, err := ExactParallel(m.Stream(), cand, threshold, 4); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(par, want) || pst.Touches != wantStats.Touches {
		t.Fatal("ExactParallel disagrees with Exact; fixture broken")
	}

	words := (400 + 63) / 64
	for _, budgetCols := range []int{2, 3, 7, 30} {
		budget := Budget{Bytes: int64(budgetCols * words * 8)}
		for _, workers := range []int{1, 4} {
			opt := PackedOptions{Budget: budget, Workers: workers}
			st := comparePacked(t, m.Stream(), cand, threshold, opt, want, wantStats)
			if budgetCols < 30 && st.PackedBatches < 2 {
				t.Errorf("budget of %d columns: %d batches, want several", budgetCols, st.PackedBatches)
			}
			comparePacked(t, streamOnly{m.Stream()}, cand, threshold, opt, want, wantStats)
		}
	}

	// A budget below two columns' words cannot pack at all: the pass
	// must delegate to ExactBudgeted wholesale and still agree.
	tiny := PackedOptions{Budget: Budget{Bytes: int64(words)*8 + 1, Dir: t.TempDir()}, Workers: 1}
	st := comparePacked(t, streamOnly{m.Stream()}, cand, threshold, tiny, want, wantStats)
	if st.PackedBatches != 0 || st.PackedWords != 0 {
		t.Errorf("fallback pass still reported packed work: %+v", st)
	}
	if st.SpillRuns == 0 {
		t.Errorf("fallback under a %d-byte budget did not spill", tiny.Budget.Bytes)
	}
}

// TestPackedEdgeCases: empty candidate lists, zero-row sources and
// invalid inputs behave exactly like the scalar pass.
func TestPackedEdgeCases(t *testing.T) {
	m := matrix.MustNew(2, [][]int32{{0}, {1}})
	if _, _, err := ExactPacked(m.Stream(), nil, -0.1, PackedOptions{}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, _, err := ExactPacked(m.Stream(), []pairs.Scored{{Pair: pairs.Pair{I: 0, J: 5}}}, 0.5, PackedOptions{}); err == nil {
		t.Error("out-of-range candidate accepted")
	}
	if _, _, err := ExactPacked(m.Stream(), []pairs.Scored{{Pair: pairs.Pair{I: 1, J: 1}}}, 0.5, PackedOptions{}); err == nil {
		t.Error("self pair accepted")
	}
	out, st, err := ExactPacked(m.Stream(), nil, 0.5, PackedOptions{})
	if err != nil || len(out) != 0 || st.In != 0 {
		t.Errorf("empty candidates: out=%v st=%+v err=%v", out, st, err)
	}

	empty := &matrix.SliceSource{Cols: 4}
	cand := []pairs.Scored{{Pair: pairs.Make(0, 1)}, {Pair: pairs.Make(2, 3)}}
	want, wantStats, err := Exact(empty, cand, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := ExactPacked(empty, cand, 0.5, PackedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || st.In != wantStats.In || st.Out != wantStats.Out {
		t.Errorf("zero-row source: packed (%v,%+v) scalar (%v,%+v)", got, st, want, wantStats)
	}
}

// TestPackedCancellation: a cancelled context aborts the pass with
// context.Canceled, before any batch and between pair chunks.
func TestPackedCancellation(t *testing.T) {
	rng := hashing.NewSplitMix64(5)
	m := randomMatrix(rng, 200, 20, 0.2)
	cand := randomCandidates(rng, 20, 600)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ExactPacked(m.Stream(), cand, 0.5, PackedOptions{Context: ctx}); err != context.Canceled {
		t.Errorf("pre-cancelled context: err=%v, want context.Canceled", err)
	}

	// Cancel from the first progress tick: the pair sweep checks the
	// context every packedTickChunk pairs and must abort.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	tick := func(done, total int64) {
		if done < total {
			cancel2()
		}
	}
	if _, _, err := ExactPacked(m.Stream(), cand, 0.5, PackedOptions{Context: ctx2, Tick: tick}); err != context.Canceled {
		t.Errorf("mid-sweep cancel: err=%v, want context.Canceled", err)
	}
}

// TestPackedProgressMonotonic: ticks report candidate pairs, never
// exceed the total, and finish exactly at (total, total).
func TestPackedProgressMonotonic(t *testing.T) {
	rng := hashing.NewSplitMix64(13)
	m := randomMatrix(rng, 150, 20, 0.2)
	cand := randomCandidates(rng, 20, 700)
	var last, calls int64
	tick := func(done, total int64) {
		calls++
		if total != int64(len(cand)) {
			t.Fatalf("tick total %d, want %d", total, len(cand))
		}
		if done > total {
			t.Fatalf("tick done %d exceeds total %d", done, total)
		}
		if done > last {
			last = done
		}
	}
	if _, _, err := ExactPacked(m.Stream(), cand, 0.3, PackedOptions{Tick: tick}); err != nil {
		t.Fatal(err)
	}
	if calls == 0 || last != int64(len(cand)) {
		t.Errorf("progress ended at %d/%d after %d ticks", last, len(cand), calls)
	}
}

// TestAutoPackHeuristic: the Auto decision depends only on the
// workload's shape, never on the source, and refuses tiny candidate
// lists and over-budget arenas.
func TestAutoPackHeuristic(t *testing.T) {
	big := make([]pairs.Scored, 100)
	for i := range big {
		big[i] = pairs.Scored{Pair: pairs.Make(int32(i%10), int32(10+i%13))}
	}
	if !AutoPack(1000, 30, big, 0) {
		t.Error("unbudgeted mid-size workload should pack")
	}
	if AutoPack(1000, 30, big[:minPackedCandidates-1], 0) {
		t.Error("tiny candidate list should not pack")
	}
	if AutoPack(0, 30, big, 0) || AutoPack(1000, 0, nil, 0) {
		t.Error("degenerate shapes should not pack")
	}
	// 23 distinct columns × 16 words × 8 bytes = 2944: a smaller budget
	// must refuse (Auto never batches), a larger one accept.
	words := int64((1000 + 63) / 64)
	arena := 23 * words * 8
	if AutoPack(1000, 30, big, arena-1) {
		t.Error("arena over budget should not pack")
	}
	if !AutoPack(1000, 30, big, arena) {
		t.Error("arena exactly at budget should pack")
	}
}

// FuzzPackedVsScalar: for arbitrary shapes, densities, budgets and
// worker counts, the packed pass must reproduce the scalar pass
// bit for bit.
func FuzzPackedVsScalar(f *testing.F) {
	f.Add(uint64(1), uint8(100), uint8(12), uint8(64), uint8(2), uint16(0), uint8(1))
	f.Add(uint64(2), uint8(37), uint8(5), uint8(128), uint8(5), uint16(200), uint8(4))
	f.Add(uint64(3), uint8(0), uint8(3), uint8(10), uint8(0), uint16(17), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, rows, cols, density, thresh uint8, budget uint16, workers uint8) {
		n := int(rows)
		m := 2 + int(cols)%40
		rng := hashing.NewSplitMix64(seed)
		mat := randomMatrix(rng, n, m, float64(density)/255)
		cand := randomCandidates(rng, m, 1+rng.Intn(80))
		threshold := float64(thresh%101) / 100
		want, wantStats, err := Exact(mat.Stream(), cand, threshold)
		if err != nil {
			t.Fatal(err)
		}
		opt := PackedOptions{
			Budget:  Budget{Bytes: int64(budget), Dir: t.TempDir()},
			Workers: 1 + int(workers)%4,
		}
		for _, src := range []matrix.RowSource{mat.Stream(), streamOnly{mat.Stream()}} {
			got, st, err := ExactPacked(src, cand, threshold, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("packed output differs:\npacked %v\nscalar %v", got, want)
			}
			if st.Touches != wantStats.Touches || st.Out != wantStats.Out {
				t.Fatalf("packed Stats differ: %+v vs %+v", st, wantStats)
			}
		}
	})
}
