// Parallel verification: the candidate list is sharded into disjoint
// contiguous slices, one per worker, each worker maintaining its own
// pairsOf index and either/both/lastRow counters. Because every
// candidate's counters live with exactly one worker, no synchronisation
// is needed on the counting hot path and the per-shard results are the
// same bytes the serial pass would produce for that slice; merging is
// concatenation in shard order plus summing Touches.
//
// Two data-delivery strategies cover the two operating regimes:
//
//   - In-memory sources (matrix.ConcurrentSource): every worker runs
//     its own full Scan. Scans are cheap relative to counter updates,
//     and there is zero copying or channel traffic.
//   - Streaming sources (files, CountingSource): a single reader
//     performs the one sequential pass the disk-resident setting
//     allows, copying rows into batches that are fanned out to every
//     worker. The source still sees exactly one Scan.
package verify

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"assocmine/internal/matrix"
	"assocmine/internal/obs"
	"assocmine/internal/pairs"
)

// ExactParallel is Exact with the candidate counters sharded across
// workers. Results are bit-identical to Exact for any worker count;
// workers <= 1 runs the serial pass, negative workers means
// GOMAXPROCS. Small candidate lists are automatically run with fewer
// workers (goroutine and fan-out overhead would dominate).
func ExactParallel(src matrix.RowSource, cand []pairs.Scored, threshold float64, workers int) ([]pairs.Scored, Stats, error) {
	return ExactParallelProgress(src, cand, threshold, workers, nil)
}

// ExactParallelProgress is ExactParallel with a progress hook: in the
// concurrent-scan strategy tick (when non-nil) receives (candidate
// pairs fully verified, total candidates) as each shard finishes its
// scan, from worker goroutines. The serial and single-reader fan-out
// strategies scan the data exactly once, so row-level progress belongs
// to the source there — wrap it in a matrix.ProgressSource instead;
// tick then only fires once at completion. Results are unaffected.
func ExactParallelProgress(src matrix.RowSource, cand []pairs.Scored, threshold float64, workers int, tick obs.Tick) ([]pairs.Scored, Stats, error) {
	if threshold < 0 || threshold > 1 {
		return nil, Stats{}, fmt.Errorf("verify: threshold must be in [0,1], got %v", threshold)
	}
	if err := validateCandidates(src.NumCols(), 0, cand); err != nil {
		return nil, Stats{}, err
	}
	return exactParallel(src, cand, threshold, workers, tick)
}

// ExactPairsParallel is ExactParallel for bare pairs.
func ExactPairsParallel(src matrix.RowSource, cand []pairs.Pair, threshold float64, workers int) ([]pairs.Scored, Stats, error) {
	scored := make([]pairs.Scored, len(cand))
	for i, p := range cand {
		scored[i] = pairs.Scored{Pair: p}
	}
	return ExactParallel(src, scored, threshold, workers)
}

// minShardCandidates is the smallest candidate shard worth a goroutine;
// below it the scan itself dominates and workers are trimmed.
const minShardCandidates = 32

// exactParallel assumes cand is already validated.
func exactParallel(src matrix.RowSource, cand []pairs.Scored, threshold float64, workers int, tick obs.Tick) ([]pairs.Scored, Stats, error) {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxUseful := (len(cand) + minShardCandidates - 1) / minShardCandidates; workers > maxUseful {
		workers = maxUseful
	}
	if workers <= 1 {
		out, st, err := exactInto(src, cand, threshold, new(exactScratch))
		if err == nil && tick != nil {
			tick(int64(len(cand)), int64(len(cand)))
		}
		return out, st, err
	}

	// Contiguous shards: concatenating shard outputs in order restores
	// the exact order the serial pass would emit.
	chunk := (len(cand) + workers - 1) / workers
	var shards [][2]int
	for lo := 0; lo < len(cand); lo += chunk {
		hi := lo + chunk
		if hi > len(cand) {
			hi = len(cand)
		}
		shards = append(shards, [2]int{lo, hi})
	}

	outs := make([][]pairs.Scored, len(shards))
	stats := make([]Stats, len(shards))
	errs := make([]error, len(shards))

	var streamedShards int64
	if cs, ok := src.(matrix.ConcurrentSource); ok && cs.ConcurrentScan() {
		var wg sync.WaitGroup
		var done atomic.Int64
		for s, sh := range shards {
			wg.Add(1)
			go func(s, lo, hi int) {
				defer wg.Done()
				outs[s], stats[s], errs[s] = exactInto(src, cand[lo:hi], threshold, new(exactScratch))
				if tick != nil && errs[s] == nil {
					tick(done.Add(int64(hi-lo)), int64(len(cand)))
				}
			}(s, sh[0], sh[1])
		}
		wg.Wait()
	} else {
		var err error
		streamedShards, err = exactFanOut(src, cand, threshold, shards, outs, stats)
		if err != nil {
			return nil, Stats{}, err
		}
		if tick != nil {
			tick(int64(len(cand)), int64(len(cand)))
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, Stats{}, err
		}
	}

	total := Stats{In: len(cand), Shards: streamedShards}
	n := 0
	for s := range outs {
		total.Touches += stats[s].Touches
		n += len(outs[s])
	}
	out := make([]pairs.Scored, 0, n)
	for _, o := range outs {
		out = append(out, o...)
	}
	total.Out = len(out)
	return out, total, nil
}

// exactFanOut runs the streaming strategy: one Scan of src chunked into
// bounded shards (matrix.FanOutShards), with each shard broadcast to
// all shard workers. Workers keep their counters across shards (row ids
// are globally unique, so the lastRow trick is unaffected by shard
// boundaries). Returns the number of shards streamed.
func exactFanOut(src matrix.RowSource, cand []pairs.Scored, threshold float64, shards [][2]int, outs [][]pairs.Scored, stats []Stats) (int64, error) {
	m := src.NumCols()
	consumers := make([]func(<-chan *matrix.Shard), len(shards))
	for s, sh := range shards {
		s, lo, hi := s, sh[0], sh[1]
		consumers[s] = func(ch <-chan *matrix.Shard) {
			shardCand := cand[lo:hi]
			sc := new(exactScratch)
			sc.reset(m, len(shardCand))
			for idx, p := range shardCand {
				sc.pairsOf[p.I] = append(sc.pairsOf[p.I], int32(idx))
				sc.pairsOf[p.J] = append(sc.pairsOf[p.J], int32(idx))
			}
			st := Stats{In: len(shardCand)}
			for b := range ch {
				for ri := 0; ri < b.Len(); ri++ {
					r, cols := b.Row(ri)
					for _, c := range cols {
						for _, idx := range sc.pairsOf[c] {
							st.Touches++
							if sc.lastRow[idx] == r {
								sc.both[idx]++
							} else {
								sc.lastRow[idx] = r
								sc.either[idx]++
							}
						}
					}
				}
			}
			out := make([]pairs.Scored, 0, len(shardCand)/4)
			for idx, p := range shardCand {
				if sc.either[idx] == 0 {
					continue
				}
				if sim := float64(sc.both[idx]) / float64(sc.either[idx]); sim >= threshold {
					p.Exact = sim
					out = append(out, p)
				}
			}
			st.Out = len(out)
			outs[s], stats[s] = out, st
		}
	}
	return matrix.FanOutShards(src, 0, 0, consumers)
}
