package verify

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
	"assocmine/internal/testutil"
)

// streamOnly hides the ConcurrentScan capability of an in-memory
// source, forcing ExactParallel onto the single-reader fan-out path.
type streamOnly struct{ src matrix.RowSource }

func (s streamOnly) NumRows() int { return s.src.NumRows() }
func (s streamOnly) NumCols() int { return s.src.NumCols() }
func (s streamOnly) Scan(fn func(int, []int32) error) error {
	return s.src.Scan(fn)
}

func allPairsCandidates(cols int) []pairs.Scored {
	var cand []pairs.Scored
	for i := int32(0); i < int32(cols); i++ {
		for j := i + 1; j < int32(cols); j++ {
			cand = append(cand, pairs.Scored{Pair: pairs.Make(i, j), Estimate: float64(i)})
		}
	}
	return cand
}

func TestExactParallelMatchesSerial(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := hashing.NewSplitMix64(7)
	m := randomMatrix(rng, 500, 60, 0.1)
	cand := allPairsCandidates(60) // 1770 candidates: several shards at every worker count
	want, wantSt, err := Exact(m.Stream(), cand, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []struct {
		name string
		s    matrix.RowSource
	}{
		{"concurrent", m.Stream()},
		{"fanout", streamOnly{m.Stream()}},
	} {
		for _, workers := range []int{1, 2, 3, 8, -1} {
			t.Run(fmt.Sprintf("%s/workers=%d", src.name, workers), func(t *testing.T) {
				got, st, err := ExactParallel(src.s, cand, 0.2, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("output differs from serial: %d pairs vs %d", len(got), len(want))
				}
				if src.name == "fanout" && workers > 1 && st.Shards <= 0 {
					t.Errorf("fan-out reported %d shards", st.Shards)
				}
				st.Shards = 0 // delivery detail; differs by strategy
				if st != wantSt {
					t.Fatalf("stats %+v, want %+v", st, wantSt)
				}
			})
		}
	}
}

func TestExactParallelSmallList(t *testing.T) {
	rng := hashing.NewSplitMix64(3)
	m := randomMatrix(rng, 200, 20, 0.2)
	cand := allPairsCandidates(20)[:5]
	want, _, err := Exact(m.Stream(), cand, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ExactParallel(m.Stream(), cand, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("small-list parallel output differs: %v vs %v", got, want)
	}
	// Empty candidate list short-circuits on every path.
	got, st, err := ExactParallel(m.Stream(), nil, 0.1, 8)
	if err != nil || got != nil || st.In != 0 || st.Out != 0 {
		t.Fatalf("empty list: got %v, %+v, %v", got, st, err)
	}
}

func TestExactParallelErrors(t *testing.T) {
	rng := hashing.NewSplitMix64(5)
	m := randomMatrix(rng, 50, 10, 0.2)
	cand := []pairs.Scored{{Pair: pairs.Pair{I: 0, J: 99}}}
	for _, workers := range []int{1, 4} {
		if _, _, err := ExactParallel(m.Stream(), cand, 0.5, workers); err == nil {
			t.Errorf("workers=%d: out-of-range candidate accepted", workers)
		}
		self := []pairs.Scored{{Pair: pairs.Pair{I: 3, J: 3}}}
		if _, _, err := ExactParallel(m.Stream(), self, 0.5, workers); err == nil {
			t.Errorf("workers=%d: self pair accepted", workers)
		}
		if _, _, err := ExactParallel(m.Stream(), nil, 1.5, workers); err == nil {
			t.Errorf("workers=%d: bad threshold accepted", workers)
		}
	}
}

func TestExactParallelPropagatesScanError(t *testing.T) {
	testutil.CheckGoroutines(t)
	boom := errors.New("boom")
	src := &failingSource{rows: 100, cols: 8, failAt: 40, err: boom}
	cand := allPairsCandidates(8)
	if _, _, err := ExactParallel(src, cand, 0.5, 4); !errors.Is(err, boom) {
		t.Fatalf("want scan error, got %v", err)
	}
}

// failingSource delivers rows with a single column until failAt.
type failingSource struct {
	rows, cols, failAt int
	err                error
}

func (f *failingSource) NumRows() int { return f.rows }
func (f *failingSource) NumCols() int { return f.cols }
func (f *failingSource) Scan(fn func(int, []int32) error) error {
	for r := 0; r < f.rows; r++ {
		if r == f.failAt {
			return f.err
		}
		if err := fn(r, []int32{int32(r % f.cols)}); err != nil {
			return err
		}
	}
	return nil
}

func TestExactBatchedParallel(t *testing.T) {
	rng := hashing.NewSplitMix64(11)
	m := randomMatrix(rng, 300, 40, 0.1)
	cand := allPairsCandidates(40) // 780 candidates
	want, wantSt, err := Exact(m.Stream(), cand, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, maxResident := range []int{64, 300, 10000} {
			got, st, err := ExactBatchedParallel(m.Stream(), cand, 0.15, maxResident, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d maxResident=%d: output differs from single-pass", workers, maxResident)
			}
			if st.In != wantSt.In || st.Out != wantSt.Out || st.Touches != wantSt.Touches {
				t.Fatalf("workers=%d maxResident=%d: stats %+v, want %+v", workers, maxResident, st, wantSt)
			}
		}
	}
	if _, _, err := ExactBatchedParallel(m.Stream(), cand, 0.15, 0, 4); err == nil {
		t.Error("maxResident=0 accepted")
	}
}

func TestExactPairsParallel(t *testing.T) {
	rng := hashing.NewSplitMix64(13)
	m := randomMatrix(rng, 200, 30, 0.1)
	var bare []pairs.Pair
	for i := int32(0); i < 30; i += 2 {
		for j := i + 1; j < 30; j += 3 {
			bare = append(bare, pairs.Make(i, j))
		}
	}
	want, _, err := ExactPairs(m.Stream(), bare, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ExactPairsParallel(m.Stream(), bare, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExactPairsParallel differs from ExactPairs")
	}
}
