// Spill-run codecs for the budgeted verification pass. A run is a
// sorted sequence of (candidate index, either, both) partial counts;
// the raw codec writes one uvarint triple per entry, the compressed
// codec groups entries into blocks and Rice-codes each field with a
// per-block parameter. Indices within a run are strictly increasing,
// so they are coded as gap-1 deltas (the running previous index
// carries across blocks); either is at least 1 for every spilled entry
// (an entry exists only once a row touched it), so it is coded as
// either-1; both is coded as-is. Blocks are byte-aligned, framed by a
// uvarint entry count and three parameter bytes, which lets the merge
// cursor decode a block at a time with bounded state.
package verify

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"assocmine/internal/bitpack"
)

// SpillCodec selects the on-disk encoding of the budgeted pass's spill
// runs. The zero value is the compressed codec: spill volume dominates
// the pass's IO and partial counts are small and clustered, so the
// Rice blocks typically cut run bytes 3-4x for pure encode/decode
// arithmetic (no allocation per entry).
type SpillCodec int

const (
	// SpillCompressed writes Rice-coded delta blocks (the default).
	SpillCompressed SpillCodec = iota
	// SpillRaw writes plain uvarint (idx, either, both) triples — the
	// pre-codec format, kept for measurement and as a debugging fallback.
	SpillRaw
)

// spillBlockEntries bounds one compressed block: large enough that the
// 4-5 framing bytes amortise to noise, small enough that the merge
// cursor's decoded-block buffer stays a few KB.
const spillBlockEntries = 512

// uvarintLen returns the encoded size of v as a uvarint, pricing the
// raw codec without materialising it.
func uvarintLen(v uint64) int64 {
	return int64((bits.Len64(v|1) + 6) / 7)
}

// countWriter counts the bytes the codecs emit.
type countWriter struct {
	w *bufio.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// writeRawRun writes entries as plain uvarint triples, returning the
// byte count.
func writeRawRun(bw *bufio.Writer, entries []spillEntry) (int64, error) {
	cw := &countWriter{w: bw}
	var buf [binary.MaxVarintLen64]byte
	for _, e := range entries {
		for _, v := range [3]uint64{uint64(uint32(e.idx)), uint64(e.either), uint64(e.both)} {
			n := binary.PutUvarint(buf[:], v)
			if _, err := cw.Write(buf[:n]); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, nil
}

// writeCompressedRun writes entries as Rice-coded blocks, returning
// the bytes written and the bytes the raw codec would have written for
// the same entries (the ratio numerator for codec accounting).
func writeCompressedRun(bw *bufio.Writer, entries []spillEntry) (written, raw int64, err error) {
	cw := &countWriter{w: bw}
	pw := bitpack.NewWriter(cw)
	var vbuf [binary.MaxVarintLen64]byte
	idxs := make([]uint64, 0, spillBlockEntries)
	eis := make([]uint64, 0, spillBlockEntries)
	bos := make([]uint64, 0, spillBlockEntries)
	prev := int64(-1)
	for len(entries) > 0 {
		n := len(entries)
		if n > spillBlockEntries {
			n = spillBlockEntries
		}
		blk := entries[:n]
		entries = entries[n:]
		idxs, eis, bos = idxs[:0], eis[:0], bos[:0]
		for _, e := range blk {
			idxs = append(idxs, uint64(int64(e.idx)-prev)-1)
			prev = int64(e.idx)
			eis = append(eis, uint64(e.either)-1)
			bos = append(bos, uint64(e.both))
			raw += uvarintLen(uint64(uint32(e.idx))) + uvarintLen(uint64(e.either)) + uvarintLen(uint64(e.both))
		}
		kIdx, _ := bitpack.BestRiceK(idxs)
		kE, _ := bitpack.BestRiceK(eis)
		kB, _ := bitpack.BestRiceK(bos)
		hn := binary.PutUvarint(vbuf[:], uint64(n))
		if _, err := cw.Write(vbuf[:hn]); err != nil {
			return cw.n, raw, err
		}
		if _, err := cw.Write([]byte{byte(kIdx), byte(kE), byte(kB)}); err != nil {
			return cw.n, raw, err
		}
		for _, v := range idxs {
			pw.WriteRice(v, kIdx)
		}
		for _, v := range eis {
			pw.WriteRice(v, kE)
		}
		for _, v := range bos {
			pw.WriteRice(v, kB)
		}
		if err := pw.Flush(); err != nil { // byte-align the block
			return cw.n, raw, err
		}
	}
	return cw.n, raw, nil
}

// readSpillBlock decodes the next compressed block into c.blk,
// advancing c.prevIdx. Returns io.EOF exactly when the run ends
// cleanly at a block boundary. The files are this process's own temp
// output, but decode still validates every field — a bug (or a
// truncated write the fault-injection suite provokes) must surface as
// an error, never as silent count corruption.
func (c *runCursor) readSpillBlock() error {
	n, err := binary.ReadUvarint(c.br)
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return fmt.Errorf("verify: reading spill run: %w", err)
	}
	if n == 0 || n > spillBlockEntries {
		return fmt.Errorf("verify: spill run corrupt: block of %d entries", n)
	}
	var params [3]byte
	if _, err := io.ReadFull(c.br, params[:]); err != nil {
		return fmt.Errorf("verify: reading spill run: %w", err)
	}
	for _, k := range params {
		if uint(k) > bitpack.MaxRiceK {
			return fmt.Errorf("verify: spill run corrupt: rice parameter %d", k)
		}
	}
	if c.pr == nil {
		c.pr = bitpack.NewReader(c.br)
	}
	if cap(c.blk) < int(n) {
		c.blk = make([]spillEntry, n)
	}
	c.blk = c.blk[:n]
	for i := range c.blk {
		d, err := c.pr.ReadRice(uint(params[0]))
		if err != nil {
			return fmt.Errorf("verify: reading spill run: %w", err)
		}
		idx := c.prevIdx + 1 + int64(d)
		if idx >= int64(c.nCand) {
			return fmt.Errorf("verify: spill run corrupt: candidate index %d of %d", idx, c.nCand)
		}
		c.prevIdx = idx
		c.blk[i].idx = int32(idx)
	}
	for i := range c.blk {
		v, err := c.pr.ReadRice(uint(params[1]))
		if err != nil {
			return fmt.Errorf("verify: reading spill run: %w", err)
		}
		if v >= 1<<31 {
			return fmt.Errorf("verify: spill run corrupt: either count %d", v+1)
		}
		c.blk[i].either = int32(v) + 1
	}
	for i := range c.blk {
		v, err := c.pr.ReadRice(uint(params[2]))
		if err != nil {
			return fmt.Errorf("verify: reading spill run: %w", err)
		}
		if v >= 1<<31 {
			return fmt.Errorf("verify: spill run corrupt: both count %d", v)
		}
		c.blk[i].both = int32(v)
	}
	c.pr.Align() // blocks are byte-aligned
	c.blkPos = 0
	return nil
}
