package verify

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"

	"assocmine/internal/hashing"
)

// TestSpillCodecsMatch: both spill codecs must produce output
// bit-identical to the unbounded pass, and the accounting must price
// the compression honestly (SpillBytesRaw identical across codecs,
// since the spill schedule is deterministic and codec-independent).
func TestSpillCodecsMatch(t *testing.T) {
	rng := hashing.NewSplitMix64(37)
	m := randomMatrix(rng, 600, 60, 0.1)
	cand := allPairsCandidates(60)
	want, _, err := Exact(m.Stream(), cand, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	stats := map[SpillCodec]Stats{}
	for _, codec := range []SpillCodec{SpillCompressed, SpillRaw} {
		for _, workers := range []int{1, 4} {
			budget := Budget{Bytes: 4 << 10, Dir: t.TempDir(), Codec: codec}
			got, st, err := ExactBudgeted(m.Stream(), cand, 0.03, budget, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("codec=%d workers=%d: output differs from Exact", codec, workers)
			}
			if workers == 1 {
				stats[codec] = st
			}
		}
	}
	comp, raw := stats[SpillCompressed], stats[SpillRaw]
	if comp.SpillRuns == 0 || raw.SpillRuns == 0 {
		t.Fatal("fixture did not spill; test would be vacuous")
	}
	if comp.SpillBytesCompressed != comp.SpillBytes || comp.SpillBytesRaw <= comp.SpillBytes {
		t.Errorf("compressed accounting inconsistent: %+v", comp)
	}
	if raw.SpillBytesCompressed != 0 || raw.SpillBytesRaw != raw.SpillBytes {
		t.Errorf("raw accounting inconsistent: %+v", raw)
	}
	if comp.SpillBytesRaw != raw.SpillBytes {
		t.Errorf("raw-equivalent price %d but raw codec wrote %d", comp.SpillBytesRaw, raw.SpillBytes)
	}
	if comp.SpillBytes*2 >= raw.SpillBytes {
		t.Errorf("compressed runs %d bytes vs raw %d: expected at least 2x", comp.SpillBytes, raw.SpillBytes)
	}
}

// TestSpillCompressedRunRoundTrip: the block codec restores an entry
// sequence exactly, across block boundaries.
func TestSpillCompressedRunRoundTrip(t *testing.T) {
	rng := hashing.NewSplitMix64(41)
	var entries []spillEntry
	idx := int32(0)
	for len(entries) < 3*spillBlockEntries+17 {
		idx += int32(rng.Next()%7) + 1
		both := int32(rng.Next() % 100)
		entries = append(entries, spillEntry{idx: idx, either: both + 1 + int32(rng.Next()%50), both: both})
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	written, raw, err := writeCompressedRun(bw, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("accounted %d bytes, wrote %d", written, buf.Len())
	}
	if raw <= written {
		t.Fatalf("raw equivalent %d not larger than compressed %d", raw, written)
	}
	c := newRunCursor(bufio.NewReader(&buf), SpillCompressed, int(idx)+1)
	for i, want := range entries {
		ok, err := c.advance()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("run ended at entry %d of %d", i, len(entries))
		}
		if c.cur != want {
			t.Fatalf("entry %d: got %+v want %+v", i, c.cur, want)
		}
	}
	if ok, err := c.advance(); ok || err != nil {
		t.Fatalf("expected clean EOF, got ok=%v err=%v", ok, err)
	}
}

// TestSpillRunCorruptionDetected: malformed compressed runs must
// surface as errors from the merge cursor, never as silent counts.
func TestSpillRunCorruptionDetected(t *testing.T) {
	valid := func(entries []spillEntry) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if _, _, err := writeCompressedRun(bw, entries); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	good := valid([]spillEntry{{idx: 3, either: 2, both: 1}, {idx: 90, either: 5, both: 0}})
	cases := []struct {
		name  string
		data  []byte
		nCand int
		want  string
	}{
		{"zero-entry block", []byte{0x00}, 100, "block of 0"},
		{"oversized block", []byte{0xff, 0xff, 0x7f}, 100, "block of"},
		{"bad rice parameter", []byte{0x01, 0x63, 0x00, 0x00}, 100, "rice parameter"},
		{"truncated params", []byte{0x02, 0x00}, 100, "reading spill run"},
		{"truncated payload", good[:len(good)-1], 100, "reading spill run"},
		{"index out of range", good, 50, "candidate index"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newRunCursor(bufio.NewReader(bytes.NewReader(tc.data)), SpillCompressed, tc.nCand)
			var err error
			for {
				var ok bool
				ok, err = c.advance()
				if !ok {
					break
				}
			}
			if err == nil {
				t.Fatal("corrupt run read to EOF without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
