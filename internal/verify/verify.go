// Package verify implements the third phase shared by all the paper's
// algorithms: a final pass over the original data that, for each
// candidate column pair, counts the rows with a 1 in at least one of
// the two columns and the rows with a 1 in both, yielding the exact
// similarity and eliminating every false positive.
//
// It also provides the exact all-pairs ground truth the experiments
// compare against ("computed in an offline fashion by a brute-force
// counting algorithm", Section 5.1).
package verify

import (
	"fmt"

	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

// Stats reports verification work.
type Stats struct {
	In      int   // candidate pairs checked
	Out     int   // pairs surviving the threshold
	Touches int64 // per-row pair-counter updates

	// Shards counts the bounded row blocks broadcast by the streamed
	// fan-out strategies (0 when the pass scanned rows directly).
	Shards int64
	// SpillRuns and SpillBytes report the sorted runs the budgeted pass
	// wrote to disk when the counter table exceeded its memory budget
	// (both 0 when everything stayed resident). SpillBytes is the bytes
	// actually written in the configured Budget.Codec; SpillBytesRaw is
	// what the plain uvarint-triple encoding would have cost for the
	// same entries, and SpillBytesCompressed equals SpillBytes under
	// SpillCompressed (0 under SpillRaw) — the pair prices the codec for
	// ratio reporting without a second pass.
	SpillRuns            int64
	SpillBytes           int64
	SpillBytesRaw        int64
	SpillBytesCompressed int64

	// PackedWords counts the uint64 AND/OR word operations of the packed
	// popcount kernel and PackedBatches the candidate batches its
	// bit-column arena was rebuilt for (both 0 on the scalar paths).
	PackedWords   int64
	PackedBatches int64
}

// exactScratch holds the per-candidate counters and the per-column
// candidate index of one pruning pass. Reusing one scratch across
// passes (ExactBatched's batches, ExactParallel's per-worker state)
// keeps the backing arrays alive instead of reallocating them for
// every batch.
type exactScratch struct {
	pairsOf [][]int32 // pairsOf[c] lists indices of candidates with c as an endpoint
	either  []int32
	both    []int32
	lastRow []int32
}

// reset prepares the scratch for m columns and n candidates, keeping
// whatever backing capacity earlier passes grew.
func (sc *exactScratch) reset(m, n int) {
	if cap(sc.pairsOf) < m {
		sc.pairsOf = make([][]int32, m)
	}
	sc.pairsOf = sc.pairsOf[:m]
	for c := range sc.pairsOf {
		sc.pairsOf[c] = sc.pairsOf[c][:0]
	}
	if cap(sc.either) < n {
		sc.either = make([]int32, n)
		sc.both = make([]int32, n)
		sc.lastRow = make([]int32, n)
	}
	sc.either = sc.either[:n]
	sc.both = sc.both[:n]
	sc.lastRow = sc.lastRow[:n]
	for i := range sc.either {
		sc.either[i] = 0
		sc.both[i] = 0
		sc.lastRow[i] = -1
	}
}

// validateCandidates checks column ranges and self pairs, with indices
// reported relative to the full candidate list (base is the offset of
// cand within it).
func validateCandidates(m, base int, cand []pairs.Scored) error {
	for idx, p := range cand {
		if int(p.I) >= m || int(p.J) >= m || p.I < 0 || p.J < 0 {
			return fmt.Errorf("verify: candidate %d references column out of range: (%d,%d)", base+idx, p.I, p.J)
		}
		if p.I == p.J {
			return fmt.Errorf("verify: candidate %d is a self pair (%d,%d)", base+idx, p.I, p.J)
		}
	}
	return nil
}

// Exact performs the pruning pass: one scan of src maintaining, for
// each candidate pair, |C_i ∪ C_j| and |C_i ∩ C_j| counters. It
// returns the candidates with exact similarity >= threshold, with the
// Exact field filled in (and the incoming Estimate preserved). The
// candidate list is not modified.
func Exact(src matrix.RowSource, cand []pairs.Scored, threshold float64) ([]pairs.Scored, Stats, error) {
	if threshold < 0 || threshold > 1 {
		return nil, Stats{}, fmt.Errorf("verify: threshold must be in [0,1], got %v", threshold)
	}
	if err := validateCandidates(src.NumCols(), 0, cand); err != nil {
		return nil, Stats{}, err
	}
	return exactInto(src, cand, threshold, new(exactScratch))
}

// exactInto is the counting core of Exact. Candidates must already be
// validated; sc supplies (and retains) the counter arrays.
func exactInto(src matrix.RowSource, cand []pairs.Scored, threshold float64, sc *exactScratch) ([]pairs.Scored, Stats, error) {
	st := Stats{In: len(cand)}
	if len(cand) == 0 {
		return nil, st, nil
	}
	sc.reset(src.NumCols(), len(cand))
	for idx, p := range cand {
		sc.pairsOf[p.I] = append(sc.pairsOf[p.I], int32(idx))
		sc.pairsOf[p.J] = append(sc.pairsOf[p.J], int32(idx))
	}
	pairsOf, either, both, lastRow := sc.pairsOf, sc.either, sc.both, sc.lastRow
	err := src.Scan(func(row int, cols []int32) error {
		r := int32(row)
		for _, c := range cols {
			for _, idx := range pairsOf[c] {
				st.Touches++
				if lastRow[idx] == r {
					// Second endpoint seen in this row.
					both[idx]++
				} else {
					lastRow[idx] = r
					either[idx]++
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]pairs.Scored, 0, len(cand)/4)
	for idx, p := range cand {
		if either[idx] == 0 {
			continue
		}
		s := float64(both[idx]) / float64(either[idx])
		if s >= threshold {
			p.Exact = s
			out = append(out, p)
		}
	}
	st.Out = len(out)
	return out, st, nil
}

// ExactPairs is Exact for bare pairs (no estimates attached).
func ExactPairs(src matrix.RowSource, cand []pairs.Pair, threshold float64) ([]pairs.Scored, Stats, error) {
	scored := make([]pairs.Scored, len(cand))
	for i, p := range cand {
		scored[i] = pairs.Scored{Pair: p}
	}
	return Exact(src, scored, threshold)
}

// AllPairs computes the exact set of column pairs with similarity >=
// threshold by brute-force counting. It exploits sparsity: for each
// row, every pair of columns co-occurring in that row gets an
// intersection increment, so the cost is O(Σ_rows |row|²) rather than
// O(m²·n). Pairs with empty intersection can never pass a positive
// threshold and are never materialised.
func AllPairs(m *matrix.Matrix, threshold float64) ([]pairs.Scored, error) {
	return AllPairsSource(m.Stream(), threshold)
}

// AllPairsSource is AllPairs over any one-pass row source; column sizes
// are accumulated in the same pass, so the whole computation is a
// single sequential scan.
func AllPairsSource(src matrix.RowSource, threshold float64) ([]pairs.Scored, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("verify: AllPairs threshold must be in (0,1], got %v", threshold)
	}
	inter := make(map[uint64]int32, 1024)
	colSize := make([]int32, src.NumCols())
	err := src.Scan(func(row int, cols []int32) error {
		for i := 0; i < len(cols); i++ {
			colSize[cols[i]]++
			for j := i + 1; j < len(cols); j++ {
				inter[uint64(uint32(cols[i]))<<32|uint64(uint32(cols[j]))]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []pairs.Scored
	for key, cnt := range inter {
		i := int32(key >> 32)
		j := int32(key & 0xffffffff)
		union := int(colSize[i]) + int(colSize[j]) - int(cnt)
		s := float64(cnt) / float64(union)
		if s >= threshold {
			out = append(out, pairs.Scored{Pair: pairs.Pair{I: i, J: j}, Estimate: s, Exact: s})
		}
	}
	pairs.SortScored(out)
	return out, nil
}

// CountInRanges buckets exact pair similarities into the half-open
// ranges [edges[i], edges[i+1]), returning one count per range. Used to
// build the Fig. 3 histograms and the denominators of the S-curves.
func CountInRanges(ps []pairs.Scored, edges []float64) []int {
	counts := make([]int, len(edges)-1)
	for _, p := range ps {
		for b := 0; b+1 < len(edges); b++ {
			if p.Exact >= edges[b] && (p.Exact < edges[b+1] || (b+2 == len(edges) && p.Exact <= edges[b+1])) {
				counts[b]++
				break
			}
		}
	}
	return counts
}
