package verify

import (
	"math"
	"testing"
	"testing/quick"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

func randomMatrix(rng *hashing.SplitMix64, rows, cols int, density float64) *matrix.Matrix {
	b := matrix.NewBuilder(rows, cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if rng.Float64() < density {
				b.Set(r, c)
			}
		}
	}
	return b.Build()
}

func TestExactValidation(t *testing.T) {
	m := matrix.MustNew(2, [][]int32{{0}, {1}})
	if _, _, err := Exact(m.Stream(), nil, -0.1); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, _, err := Exact(m.Stream(), []pairs.Scored{{Pair: pairs.Pair{I: 0, J: 5}}}, 0.5); err == nil {
		t.Error("out-of-range candidate accepted")
	}
	if _, _, err := Exact(m.Stream(), []pairs.Scored{{Pair: pairs.Pair{I: 1, J: 1}}}, 0.5); err == nil {
		t.Error("self pair accepted")
	}
}

func TestExactEmptyCandidates(t *testing.T) {
	m := matrix.MustNew(2, [][]int32{{0}, {1}})
	out, st, err := Exact(m.Stream(), nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || st.In != 0 || st.Out != 0 {
		t.Errorf("empty input produced out=%v st=%+v", out, st)
	}
}

// TestExactMatchesColumnMath: the streaming counters must reproduce the
// column-major exact similarity for every candidate.
func TestExactMatchesColumnMath(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	m := randomMatrix(rng, 300, 20, 0.15)
	var cand []pairs.Scored
	for i := int32(0); i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			cand = append(cand, pairs.Scored{Pair: pairs.Pair{I: i, J: j}, Estimate: 0.5})
		}
	}
	out, st, err := Exact(m.Stream(), cand, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.In != len(cand) {
		t.Errorf("st.In = %d, want %d", st.In, len(cand))
	}
	got := map[pairs.Pair]float64{}
	for _, p := range out {
		got[p.Pair] = p.Exact
		if p.Estimate != 0.5 {
			t.Errorf("estimate not preserved on (%d,%d)", p.I, p.J)
		}
	}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			want := m.Similarity(i, j)
			key := pairs.Pair{I: int32(i), J: int32(j)}
			exact, ok := got[key]
			if m.UnionSize(i, j) == 0 {
				if ok {
					t.Errorf("pair of empty columns (%d,%d) reported", i, j)
				}
				continue
			}
			if !ok {
				t.Errorf("pair (%d,%d) missing from threshold-0 verification", i, j)
				continue
			}
			if math.Abs(exact-want) > 1e-12 {
				t.Errorf("exact(%d,%d) = %v, want %v", i, j, exact, want)
			}
		}
	}
}

func TestExactThresholdFilters(t *testing.T) {
	m := matrix.MustNew(4, [][]int32{
		{0, 1, 2},
		{0, 1, 2}, // identical to c0: sim 1
		{0, 3},    // sim(c0,c2) = 1/4
	})
	cand := []pairs.Scored{
		{Pair: pairs.Pair{I: 0, J: 1}},
		{Pair: pairs.Pair{I: 0, J: 2}},
	}
	out, st, err := Exact(m.Stream(), cand, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Out != 1 || len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Pair != (pairs.Pair{I: 0, J: 1}) || out[0].Exact != 1 {
		t.Errorf("survivor = %+v", out[0])
	}
}

func TestExactPairs(t *testing.T) {
	m := matrix.MustNew(3, [][]int32{{0, 1}, {0, 1}})
	out, _, err := ExactPairs(m.Stream(), []pairs.Pair{{I: 0, J: 1}}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Exact != 1 {
		t.Fatalf("out = %+v", out)
	}
}

func TestAllPairsValidation(t *testing.T) {
	m := matrix.MustNew(2, [][]int32{{0}})
	for _, th := range []float64{0, -1, 1.5} {
		if _, err := AllPairs(m, th); err == nil {
			t.Errorf("AllPairs accepted threshold %v", th)
		}
	}
}

// TestAllPairsMatchesNaive: AllPairs must equal the O(m²) column-major
// enumeration.
func TestAllPairsMatchesNaive(t *testing.T) {
	rng := hashing.NewSplitMix64(2)
	m := randomMatrix(rng, 200, 25, 0.2)
	const threshold = 0.1
	got, err := AllPairs(m, threshold)
	if err != nil {
		t.Fatal(err)
	}
	gotSet := map[pairs.Pair]float64{}
	for _, p := range got {
		gotSet[p.Pair] = p.Exact
	}
	count := 0
	for i := 0; i < m.NumCols(); i++ {
		for j := i + 1; j < m.NumCols(); j++ {
			s := m.Similarity(i, j)
			key := pairs.Pair{I: int32(i), J: int32(j)}
			if s >= threshold {
				count++
				if e, ok := gotSet[key]; !ok {
					t.Errorf("AllPairs missed (%d,%d) sim %v", i, j, s)
				} else if math.Abs(e-s) > 1e-12 {
					t.Errorf("AllPairs sim (%d,%d) = %v, want %v", i, j, e, s)
				}
			} else if _, ok := gotSet[key]; ok {
				t.Errorf("AllPairs included (%d,%d) sim %v below threshold", i, j, s)
			}
		}
	}
	if len(got) != count {
		t.Errorf("AllPairs returned %d pairs, want %d", len(got), count)
	}
}

func TestAllPairsSorted(t *testing.T) {
	rng := hashing.NewSplitMix64(3)
	m := randomMatrix(rng, 100, 15, 0.3)
	got, err := AllPairs(m, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Exact > got[i-1].Exact {
			t.Fatal("AllPairs not sorted by decreasing similarity")
		}
	}
}

func TestCountInRanges(t *testing.T) {
	ps := []pairs.Scored{
		{Exact: 0.1}, {Exact: 0.25}, {Exact: 0.5}, {Exact: 0.75}, {Exact: 1.0},
	}
	edges := []float64{0, 0.25, 0.5, 0.75, 1.0}
	counts := CountInRanges(ps, edges)
	// Half-open buckets [lo,hi): 0.1->b0, 0.25->b1, 0.5->b2; the final
	// bucket is closed so both 0.75 and 1.0 land in b3.
	want := []int{1, 1, 1, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
}

// TestPipelineRemovesFalsePositives: feeding deliberately wrong
// candidates through Exact must keep only genuinely similar pairs.
func TestPipelineRemovesFalsePositives(t *testing.T) {
	rng := hashing.NewSplitMix64(4)
	m := randomMatrix(rng, 500, 30, 0.05)
	truth, err := AllPairs(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates: every pair (lots of false positives).
	var cand []pairs.Pair
	for i := int32(0); i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			cand = append(cand, pairs.Pair{I: i, J: j})
		}
	}
	out, _, err := ExactPairs(m.Stream(), cand, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(truth) {
		t.Fatalf("verified %d pairs, ground truth %d", len(out), len(truth))
	}
}

func TestQuickExactAgreesWithSimilarity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		m := randomMatrix(rng, 60, 8, 0.3)
		var cand []pairs.Scored
		for i := int32(0); i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				cand = append(cand, pairs.Scored{Pair: pairs.Pair{I: i, J: j}})
			}
		}
		out, _, err := Exact(m.Stream(), cand, 0)
		if err != nil {
			return false
		}
		for _, p := range out {
			if math.Abs(p.Exact-m.Similarity(int(p.I), int(p.J))) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
