package assocmine

import (
	"fmt"

	"assocmine/internal/measures"
)

// Measures reports every interestingness measure of a column pair from
// its exact counts. The paper's algorithms all reduce to the same four
// statistics (|C_i|, |C_j|, |C_i ∩ C_j|, n), so any of these measures
// can screen the verified candidate pairs — the Section 1 point that
// the techniques apply to the alternate measures of interest proposed
// in the literature (lift/interest, conviction, chi-squared).
type Measures struct {
	N, SizeI, SizeJ, Intersection, Union int

	Jaccard    float64 // the paper's similarity
	Confidence float64 // conf(i => j)
	Support    float64 // classic support of {i, j}
	Interest   float64 // lift: 1 = independent
	Conviction float64 // +Inf = exceptionless rule i => j
	Cosine     float64
	Overlap    float64 // containment coefficient
	ChiSquare  float64 // 2x2 dependence statistic
}

// PairMeasures computes all measures for columns i and j exactly.
func PairMeasures(d *Dataset, i, j int) (Measures, error) {
	if i < 0 || i >= d.NumCols() || j < 0 || j >= d.NumCols() {
		return Measures{}, fmt.Errorf("assocmine: column out of range: (%d,%d) of %d", i, j, d.NumCols())
	}
	if i == j {
		return Measures{}, fmt.Errorf("assocmine: self pair (%d,%d)", i, j)
	}
	c := measures.Counts{
		N:     d.NumRows(),
		A:     d.ColumnSize(i),
		B:     d.ColumnSize(j),
		Inter: d.m.IntersectSize(i, j),
	}
	if err := c.Validate(); err != nil {
		return Measures{}, err
	}
	return Measures{
		N: c.N, SizeI: c.A, SizeJ: c.B, Intersection: c.Inter, Union: c.Union(),
		Jaccard:    c.Jaccard(),
		Confidence: c.Confidence(),
		Support:    c.Support(),
		Interest:   c.Interest(),
		Conviction: c.Conviction(),
		Cosine:     c.Cosine(),
		Overlap:    c.Overlap(),
		ChiSquare:  c.ChiSquare(),
	}, nil
}
