package assocmine

import (
	"math"
	"testing"
)

func TestPairMeasures(t *testing.T) {
	d, err := NewDatasetFromColumns(10, [][]int{
		{0, 1, 2, 3}, // A = 4
		{2, 3, 4},    // B = 3, inter = 2
		{},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := PairMeasures(d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 10 || m.SizeI != 4 || m.SizeJ != 3 || m.Intersection != 2 || m.Union != 5 {
		t.Fatalf("counts: %+v", m)
	}
	if math.Abs(m.Jaccard-0.4) > 1e-12 {
		t.Errorf("Jaccard = %v", m.Jaccard)
	}
	if math.Abs(m.Confidence-0.5) > 1e-12 {
		t.Errorf("Confidence = %v", m.Confidence)
	}
	if math.Abs(m.Interest-2*10.0/(4*3)) > 1e-12 {
		t.Errorf("Interest = %v", m.Interest)
	}
	if m.Jaccard != d.Similarity(0, 1) {
		t.Error("Jaccard disagrees with Dataset.Similarity")
	}
	if m.Confidence != d.Confidence(0, 1) {
		t.Error("Confidence disagrees with Dataset.Confidence")
	}
	// Validation paths.
	if _, err := PairMeasures(d, 0, 9); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := PairMeasures(d, 1, 1); err == nil {
		t.Error("self pair accepted")
	}
	// Empty column: all-zero measures, no error.
	e, err := PairMeasures(d, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Jaccard != 0 || e.Interest != 0 {
		t.Errorf("empty-column measures: %+v", e)
	}
}
