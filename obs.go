package assocmine

import (
	"io"
	"net/http"
	"sync"

	"assocmine/internal/obs"
)

// Observability: every SimilarPairs-family run can report per-phase
// spans (start/end and duration), counters (rows scanned, signature
// cells built, candidate counter increments, candidates emitted, pairs
// verified, false positives pruned) and gauges (worker budgets,
// signature memory) to a Recorder, plus coarse progress to a
// ProgressFunc. The default is a no-op that costs nothing on the hot
// path; Stats is always populated from the same event stream, so a
// Collector attached to a run reports numbers that exactly match the
// returned Stats.

// Recorder receives per-phase spans, counters and gauges from a run.
// Implementations must be safe for concurrent use; see NewCollector for
// the ready-made aggregating implementation.
type Recorder = obs.Recorder

// ProgressFunc receives coarse progress: phase is one of
// PhaseSignatures, PhaseCandidates or PhaseVerify; done/total are in
// phase-specific units (rows for data scans, columns or bands for
// candidate generation, candidate pairs for sharded verification).
// Calls are serialised and done is non-decreasing within a phase,
// reaching total when the phase completes.
type ProgressFunc = obs.ProgressFunc

// Collector is a thread-safe Recorder that aggregates events in memory
// and exports them as an expvar variable or in the Prometheus text
// format (WriteTo).
type Collector = obs.Collector

// NewCollector returns an empty metrics Collector.
func NewCollector() *Collector { return obs.NewCollector() }

// PublishMetrics registers the collector in the process-wide expvar
// registry under name (idempotent), making it visible on the standard
// /debug/vars endpoint.
func PublishMetrics(name string, c *Collector) { obs.Publish(name, c) }

// RegisterMetricsHTTP registers the standard observability endpoints
// for c on mux — /metrics in the Prometheus text format and
// /debug/vars with the collector snapshot published under name — the
// same handlers assocfind -metrics-addr and assocserve expose.
func RegisterMetricsHTTP(mux *http.ServeMux, name string, c *Collector) {
	obs.RegisterHTTP(mux, name, c)
}

// Phase names as reported to Recorder and ProgressFunc.
const (
	PhaseSignatures = obs.PhaseSignatures
	PhaseCandidates = obs.PhaseCandidates
	PhaseVerify     = obs.PhaseVerify
)

// Counter and gauge names as reported to Recorder; docs/ALGORITHMS.md
// maps each to the paper quantity it measures.
const (
	CounterRowsScanned      = obs.CounterRowsScanned
	CounterDataPasses       = obs.CounterDataPasses
	CounterSignatureCells   = obs.CounterSignatureCells
	CounterIncrements       = obs.CounterIncrements
	CounterBucketPairs      = obs.CounterBucketPairs
	CounterCandidates       = obs.CounterCandidates
	CounterVerifyTouches    = obs.CounterVerifyTouches
	CounterPairsVerified    = obs.CounterPairsVerified
	CounterFalsePositives   = obs.CounterFalsePositives
	CounterTopPairsAttempts = obs.CounterTopPairsAttempts
	CounterBytesRead        = obs.CounterBytesRead
	CounterShards           = obs.CounterShards
	CounterSpillRuns        = obs.CounterSpillRuns
	CounterSpillBytes       = obs.CounterSpillBytes

	CounterCompressedBytesRead  = obs.CounterCompressedBytesRead
	CounterSpillBytesCompressed = obs.CounterSpillBytesCompressed
	CounterIORetries            = obs.CounterIORetries
	CounterFaultsInjected       = obs.CounterFaultsInjected
	CounterPackedWords          = obs.CounterPackedWords
	CounterPackedBatches        = obs.CounterPackedBatches
	CounterPairsSampled         = obs.CounterPairsSampled
	CounterSampleAccepts        = obs.CounterSampleAccepts
	CounterSampleDups           = obs.CounterSampleDups
	CounterRowsAppended         = obs.CounterRowsAppended
	CounterStatesMerged         = obs.CounterStatesMerged
	CounterWindowsExpired       = obs.CounterWindowsExpired

	GaugeSignatureWorkers = obs.GaugeSignatureWorkers
	GaugeCandidateWorkers = obs.GaugeCandidateWorkers
	GaugeVerifyWorkers    = obs.GaugeVerifyWorkers
	GaugeSignatureBytes   = obs.GaugeSignatureBytes
	GaugeCodecRatio       = obs.GaugeCodecRatio
)

// WriteMetrics renders c in the Prometheus text exposition format.
func WriteMetrics(w io.Writer, c *Collector) error {
	_, err := c.WriteTo(w)
	return err
}

// ExpvarString renders c's snapshot as the JSON value the expvar
// endpoint publishes for it.
func ExpvarString(c *Collector) string { return c.ExpvarFunc().String() }

// progressSink funnels obs.Tick callbacks — possibly concurrent and
// out of order, coming from worker goroutines — into the user's
// ProgressFunc, serialising calls and enforcing per-phase monotonicity.
// A nil sink (progress disabled) hands out nil ticks, so the phases pay
// nothing.
type progressSink struct {
	mu    sync.Mutex
	fn    ProgressFunc
	phase string
	last  int64
	total int64
}

func newProgressSink(fn ProgressFunc) *progressSink {
	if fn == nil {
		return nil
	}
	return &progressSink{fn: fn}
}

// enter starts a phase and returns the Tick its workers should use.
func (p *progressSink) enter(phase string) obs.Tick {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	p.phase = phase
	p.last = -1
	p.total = 0
	p.mu.Unlock()
	return func(done, total int64) { p.tick(phase, done, total) }
}

func (p *progressSink) tick(phase string, done, total int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.phase != phase || done <= p.last {
		return
	}
	p.last = done
	p.total = total
	p.fn(phase, done, total)
}

// finish reports phase completion (done == total) unless the last tick
// already did. Phases without fine-grained hooks report (1, 1).
func (p *progressSink) finish(phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.phase != phase {
		return
	}
	if p.total <= 0 {
		p.total = 1
	}
	if p.last < p.total {
		p.last = p.total
		p.fn(phase, p.total, p.total)
	}
}
