package assocmine

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"assocmine/internal/testutil"
)

func obsFixture(t *testing.T) *Dataset {
	t.Helper()
	d, _, err := GenerateSynthetic(SyntheticOptions{
		Rows: 300, Cols: 80, MinDensity: 0.03, MaxDensity: 0.08,
		PairsPerRange: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// lockedRecorder wraps a Collector and additionally records the raw
// event order so tests can assert on it.
type lockedRecorder struct {
	mu     sync.Mutex
	inner  *Collector
	starts []string
	ends   []string
}

func (r *lockedRecorder) PhaseStart(phase string) {
	r.mu.Lock()
	r.starts = append(r.starts, phase)
	r.mu.Unlock()
	r.inner.PhaseStart(phase)
}

func (r *lockedRecorder) PhaseEnd(phase string, d time.Duration) {
	r.mu.Lock()
	r.ends = append(r.ends, phase)
	r.mu.Unlock()
	r.inner.PhaseEnd(phase, d)
}

func (r *lockedRecorder) Add(counter string, n int64)    { r.inner.Add(counter, n) }
func (r *lockedRecorder) SetGauge(gauge string, v int64) { r.inner.SetGauge(gauge, v) }

// expectedPhases lists the phases each algorithm runs, in order.
func expectedPhases(a Algorithm) []string {
	switch a {
	case MinHash, KMinHash, MinLSH:
		return []string{PhaseSignatures, PhaseCandidates, PhaseVerify}
	case HammingLSH:
		return []string{PhaseCandidates, PhaseVerify}
	default: // BruteForce, Apriori: one exact pass
		return []string{PhaseCandidates}
	}
}

// TestRecorderSpansAndStats runs every algorithm serial and parallel
// and checks: exactly one span per executed phase, the collector's
// counters exactly matching the returned Stats, and identical counter
// values (the timing-free ones) between the serial and parallel runs.
func TestRecorderSpansAndStats(t *testing.T) {
	d := obsFixture(t)
	algos := []struct {
		algo Algorithm
		cfg  Config
	}{
		{BruteForce, Config{Threshold: 0.5}},
		{MinHash, Config{Threshold: 0.5, K: 60, Seed: 3}},
		{KMinHash, Config{Threshold: 0.5, K: 60, Seed: 3}},
		{MinLSH, Config{Threshold: 0.5, K: 60, R: 5, L: 12, Seed: 3}},
		{HammingLSH, Config{Threshold: 0.7, Seed: 3}},
		{Apriori, Config{Threshold: 0.5, MinSupport: 0.005}},
	}
	for _, tc := range algos {
		for _, workers := range []int{1, 4} {
			cfg := tc.cfg
			cfg.Algorithm = tc.algo
			cfg.Workers = workers
			rec := &lockedRecorder{inner: NewCollector()}
			cfg.Recorder = rec
			res, err := SimilarPairs(d, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", tc.algo, workers, err)
			}
			want := expectedPhases(tc.algo)
			if got := rec.starts; !equalStrings(got, want) {
				t.Errorf("%v workers=%d: phase starts %v, want %v", tc.algo, workers, got, want)
			}
			if got := rec.ends; !equalStrings(got, want) {
				t.Errorf("%v workers=%d: phase ends %v, want %v", tc.algo, workers, got, want)
			}
			snap := rec.inner.Snapshot()
			for phase, span := range snap.Spans {
				if span.Count != 1 {
					t.Errorf("%v workers=%d: phase %q has %d spans, want 1", tc.algo, workers, phase, span.Count)
				}
			}
			st := res.Stats
			checks := []struct {
				counter string
				want    int64
			}{
				{CounterCandidates, int64(st.Candidates)},
				{CounterPairsVerified, int64(st.Verified)},
				{CounterFalsePositives, int64(st.FalsePositives)},
				{CounterDataPasses, int64(st.DataPasses)},
				{CounterRowsScanned, st.RowsScanned},
				{CounterSignatureCells, st.SignatureCells},
				{CounterIncrements, st.CandidateIncrements},
				{CounterBucketPairs, st.BucketPairs},
				{CounterVerifyTouches, st.VerifyTouches},
			}
			for _, c := range checks {
				if got := rec.inner.Counter(c.counter); got != c.want {
					t.Errorf("%v workers=%d: counter %q = %d, Stats says %d", tc.algo, workers, c.counter, got, c.want)
				}
			}
			if got := rec.inner.Gauge(GaugeSignatureBytes); got != st.SignatureBytes {
				t.Errorf("%v workers=%d: gauge %q = %d, Stats says %d", tc.algo, workers, GaugeSignatureBytes, got, st.SignatureBytes)
			}
			if st.Verified != st.Candidates-st.FalsePositives {
				t.Errorf("%v workers=%d: Verified %d != Candidates %d - FalsePositives %d", tc.algo, workers, st.Verified, st.Candidates, st.FalsePositives)
			}
		}
	}
}

// TestProgressMonotonic checks that a ProgressFunc sees serialised,
// per-phase monotonically non-decreasing progress that reaches
// done == total for every phase, for every algorithm, serial and
// parallel.
func TestProgressMonotonic(t *testing.T) {
	testutil.CheckGoroutines(t)
	d := obsFixture(t)
	algos := []struct {
		algo Algorithm
		cfg  Config
	}{
		{BruteForce, Config{Threshold: 0.5}},
		{MinHash, Config{Threshold: 0.5, K: 60, Seed: 3}},
		{KMinHash, Config{Threshold: 0.5, K: 60, Seed: 3}},
		{MinLSH, Config{Threshold: 0.5, K: 60, R: 5, L: 12, Seed: 3}},
		{HammingLSH, Config{Threshold: 0.7, Seed: 3}},
		{Apriori, Config{Threshold: 0.5, MinSupport: 0.005}},
	}
	for _, tc := range algos {
		for _, workers := range []int{1, 4} {
			cfg := tc.cfg
			cfg.Algorithm = tc.algo
			cfg.Workers = workers
			type tick struct {
				phase       string
				done, total int64
			}
			var ticks []tick
			cfg.Progress = func(phase string, done, total int64) {
				ticks = append(ticks, tick{phase, done, total})
			}
			if _, err := SimilarPairs(d, cfg); err != nil {
				t.Fatalf("%v workers=%d: %v", tc.algo, workers, err)
			}
			if len(ticks) == 0 {
				t.Fatalf("%v workers=%d: no progress reported", tc.algo, workers)
			}
			// Within each phase: done strictly increases (the sink drops
			// regressions and duplicates) and ends at total.
			last := map[string]tick{}
			order := []string{}
			for _, tk := range ticks {
				if tk.done < 0 || tk.total <= 0 || tk.done > tk.total {
					t.Errorf("%v workers=%d: out-of-range tick %+v", tc.algo, workers, tk)
				}
				prev, seen := last[tk.phase]
				if seen && tk.done <= prev.done {
					t.Errorf("%v workers=%d: non-monotonic tick %+v after %+v", tc.algo, workers, tk, prev)
				}
				if !seen {
					order = append(order, tk.phase)
				}
				last[tk.phase] = tk
			}
			if want := expectedPhases(tc.algo); !equalStrings(order, want) {
				t.Errorf("%v workers=%d: phases %v, want %v", tc.algo, workers, order, want)
			}
			for phase, tk := range last {
				if tk.done != tk.total {
					t.Errorf("%v workers=%d: phase %q ended at %d/%d", tc.algo, workers, phase, tk.done, tk.total)
				}
			}
		}
	}
}

// TestProgressDoesNotChangeResults: hooked and unhooked runs of the
// same configuration produce identical pairs and work counters.
func TestProgressDoesNotChangeResults(t *testing.T) {
	testutil.CheckGoroutines(t)
	d := obsFixture(t)
	for _, workers := range []int{1, 4} {
		cfg := Config{Algorithm: MinHash, Threshold: 0.5, K: 60, Seed: 3, Workers: workers}
		plain, err := SimilarPairs(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Recorder = NewCollector()
		cfg.Progress = func(string, int64, int64) {}
		hooked, err := SimilarPairs(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.Pairs) != len(hooked.Pairs) {
			t.Fatalf("workers=%d: %d pairs without hooks, %d with", workers, len(plain.Pairs), len(hooked.Pairs))
		}
		for i := range plain.Pairs {
			if plain.Pairs[i] != hooked.Pairs[i] {
				t.Fatalf("workers=%d: pair %d differs: %+v vs %+v", workers, i, plain.Pairs[i], hooked.Pairs[i])
			}
		}
		if plain.Stats.CandidateIncrements != hooked.Stats.CandidateIncrements ||
			plain.Stats.VerifyTouches != hooked.Stats.VerifyTouches {
			t.Fatalf("workers=%d: work counters differ with hooks attached", workers)
		}
	}
}

// TestSignaturesRecorder checks the precomputed-sketch query path
// reports counters that match its Stats.
func TestSignaturesRecorder(t *testing.T) {
	d := obsFixture(t)
	sig, err := ComputeSignatures(d, 60, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{MinHash, MinLSH} {
		coll := NewCollector()
		res, err := SimilarPairsWithSignatures(d, sig, Config{
			Algorithm: algo, Threshold: 0.5, R: 5, L: 12,
			Recorder: coll,
			Progress: func(string, int64, int64) {},
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if got, want := coll.Counter(CounterCandidates), int64(res.Stats.Candidates); got != want {
			t.Errorf("%v: candidates counter %d, Stats %d", algo, got, want)
		}
		if got, want := coll.Counter(CounterPairsVerified), int64(res.Stats.Verified); got != want {
			t.Errorf("%v: verified counter %d, Stats %d", algo, got, want)
		}
		if snap := coll.Snapshot(); snap.Spans[PhaseSignatures].Count != 0 {
			t.Errorf("%v: precomputed-sketch query reported a signature span", algo)
		}
	}
}

// TestProgressiveRecorder checks the band-by-band API reports the same
// totals in its recorder as in Stats.
func TestProgressiveRecorder(t *testing.T) {
	d := obsFixture(t)
	coll := NewCollector()
	res, err := ProgressiveSimilarPairs(d, Config{
		Algorithm: MinLSH, Threshold: 0.5, K: 60, R: 5, L: 12, Seed: 3,
		Recorder: coll,
		Progress: func(string, int64, int64) {},
	}, func(Progress) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if got, want := coll.Counter(CounterCandidates), int64(res.Stats.Candidates); got != want {
		t.Errorf("candidates counter %d, Stats %d", got, want)
	}
	if got, want := coll.Counter(CounterPairsVerified), int64(res.Stats.Verified); got != want {
		t.Errorf("verified counter %d, Stats %d", got, want)
	}
	snap := coll.Snapshot()
	for _, phase := range []string{PhaseSignatures, PhaseCandidates, PhaseVerify} {
		if snap.Spans[phase].Count != 1 {
			t.Errorf("phase %q: %d spans, want 1", phase, snap.Spans[phase].Count)
		}
	}
}

// TestTopPairsAttemptsCounter checks TopPairs reports its retries.
func TestTopPairsAttemptsCounter(t *testing.T) {
	d := obsFixture(t)
	coll := NewCollector()
	if _, err := TopPairs(d, 3, Config{
		Algorithm: MinHash, Threshold: 0.95, K: 60, Seed: 3, Recorder: coll,
	}, 0.3); err != nil {
		t.Fatal(err)
	}
	if got := coll.Counter(CounterTopPairsAttempts); got < 1 {
		t.Errorf("toppairs_attempts = %d, want >= 1", got)
	}
}

// TestMetricsExportMatchesStats: the Prometheus text and expvar JSON
// of a collector attached to a run carry exactly the numbers Stats
// reports. (The zero-allocation guarantee of the no-op recorder seam
// is asserted in internal/obs.)
func TestMetricsExportMatchesStats(t *testing.T) {
	d := obsFixture(t)
	coll := NewCollector()
	res, err := SimilarPairs(d, Config{
		Algorithm: MinHash, Threshold: 0.5, K: 60, Seed: 3, Recorder: coll,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteMetrics(&sb, coll); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"assocmine_candidates_total " + itoa(int64(res.Stats.Candidates)),
		"assocmine_pairs_verified_total " + itoa(int64(res.Stats.Verified)),
		"assocmine_false_positives_total " + itoa(int64(res.Stats.FalsePositives)),
		`assocmine_phase_runs_total{phase="signatures"} 1`,
		`assocmine_phase_runs_total{phase="candidates"} 1`,
		`assocmine_phase_runs_total{phase="verify"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(ExpvarString(coll), `"candidates"`) {
		t.Error("expvar JSON missing counters")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }
