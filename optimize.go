package assocmine

import (
	"fmt"

	"assocmine/internal/hashing"
	"assocmine/internal/lsh"
)

// LSHBudget describes the quality target for OptimizeLSH: the expected
// number of false negatives and false positives the user will tolerate
// at a similarity threshold (the Section 4.1 minimization problem).
type LSHBudget struct {
	// Threshold is the similarity cutoff s*.
	Threshold float64
	// SampleColumns is how many columns to sample when estimating the
	// similarity distribution; default 200 (capped at the column
	// count).
	SampleColumns int
	// MaxFalseNeg and MaxFalsePos bound the expected error counts.
	MaxFalseNeg float64
	MaxFalsePos float64
	// MaxR and MaxL bound the search space; defaults 40 and 500.
	MaxR, MaxL int
	// Seed drives the column sample.
	Seed uint64
}

// LSHParams is the optimizer's choice with its predicted error counts
// over the sampled distribution.
type LSHParams struct {
	R, L        int
	PredictedFN float64
	PredictedFP float64
}

// OptimizeLSH solves the paper's input-sensitive parameter problem:
// minimize the signature budget l·r such that the expected false
// negatives and false positives of Min-LSH — computed from a sampled
// similarity distribution of this dataset — stay within budget. Use
// the returned R and L (and K = R*L) in a MinLSH Config.
func OptimizeLSH(d *Dataset, b LSHBudget) (LSHParams, error) {
	if b.Threshold <= 0 || b.Threshold > 1 {
		return LSHParams{}, fmt.Errorf("assocmine: Threshold must be in (0,1], got %v", b.Threshold)
	}
	if b.SampleColumns == 0 {
		b.SampleColumns = 200
	}
	if b.SampleColumns < 2 {
		return LSHParams{}, fmt.Errorf("assocmine: SampleColumns must be at least 2")
	}
	if b.MaxR == 0 {
		b.MaxR = 40
	}
	if b.MaxL == 0 {
		b.MaxL = 500
	}
	dist, err := sampleDistribution(d, b.SampleColumns, b.Seed)
	if err != nil {
		return LSHParams{}, err
	}
	p, err := lsh.Optimize(dist, b.Threshold, b.MaxFalseNeg, b.MaxFalsePos, b.MaxR, b.MaxL)
	if err != nil {
		return LSHParams{}, err
	}
	return LSHParams{R: p.R, L: p.L, PredictedFN: p.FN, PredictedFP: p.FP}, nil
}

// sampleDistribution estimates the pairwise similarity distribution by
// sampling columns and scaling counts to the full pair count (the
// procedure Section 4.1 assumes: "we can approximate this distribution
// by sampling a small fraction of columns").
func sampleDistribution(d *Dataset, sampleCols int, seed uint64) (lsh.Distribution, error) {
	m := d.m
	if sampleCols > m.NumCols() {
		sampleCols = m.NumCols()
	}
	if sampleCols < 2 {
		return lsh.Distribution{}, fmt.Errorf("assocmine: need at least 2 columns to sample")
	}
	rng := hashing.NewSplitMix64(seed)
	sample := rng.Perm(m.NumCols())[:sampleCols]
	edges := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	counts := make([]float64, len(edges)-1)
	for a := 0; a < len(sample); a++ {
		for b := a + 1; b < len(sample); b++ {
			s := m.Similarity(sample[a], sample[b])
			for e := 0; e+1 < len(edges); e++ {
				if s >= edges[e] && (s < edges[e+1] || (e+2 == len(edges) && s <= edges[e+1])) {
					counts[e]++
					break
				}
			}
		}
	}
	samplePairs := float64(sampleCols) * float64(sampleCols-1) / 2
	totalPairs := float64(m.NumCols()) * float64(m.NumCols()-1) / 2
	scale := totalPairs / samplePairs
	dist := lsh.Distribution{S: make([]float64, len(counts)), Count: make([]float64, len(counts))}
	for b := range counts {
		dist.S[b] = (edges[b] + edges[b+1]) / 2
		dist.Count[b] = counts[b] * scale
	}
	return dist, nil
}
