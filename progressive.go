package assocmine

import (
	"fmt"
	"time"

	"assocmine/internal/lsh"
	"assocmine/internal/matrix"
	"assocmine/internal/obs"
	"assocmine/internal/pairs"
	"assocmine/internal/verify"
)

// Progress describes one band of a progressive Min-LSH run.
type Progress struct {
	// Band is the 0-based index of the band just processed; Bands is
	// the total.
	Band, Bands int
	// Fresh holds the newly discovered pairs of this band, verified
	// exactly (Similarity filled, pairs below threshold already
	// removed).
	Fresh []Pair
	// TotalFound is the number of verified pairs accumulated so far.
	TotalFound int
}

// ProgressiveSimilarPairs runs Min-LSH band by band, delivering each
// band's newly found (and exactly verified) pairs to fn as they
// surface — the online framework of Section 4: each band cuts the
// remaining false negatives by a fixed factor, the most similar pairs
// tend to appear first, and the user can stop at any time by returning
// false from fn. The pairs accumulated up to the stop are returned.
//
// cfg.Algorithm must be MinLSH (or zero, which is treated as MinLSH
// here); cfg.K must be at least R*L. cfg.Workers parallelises the
// signature pass and each band's verification; the banding itself
// stays band-at-a-time — that ordering is the point of the API.
// cfg.Window restricts the run to the trailing rows, like SimilarPairs.
func ProgressiveSimilarPairs(d *Dataset, cfg Config, fn func(Progress) bool) (*Result, error) {
	if cfg.Algorithm != MinLSH && cfg.Algorithm != BruteForce {
		return nil, fmt.Errorf("assocmine: progressive mining requires MinLSH, got %v", cfg.Algorithm)
	}
	cfg.Algorithm = MinLSH
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if cfg.K < cfg.R*cfg.L {
		return nil, fmt.Errorf("assocmine: progressive mining needs K >= R*L (%d >= %d)", cfg.K, cfg.R*cfg.L)
	}
	if fn == nil {
		return nil, fmt.Errorf("assocmine: progressive mining requires a callback")
	}
	st := Stats{Algorithm: MinLSH, SignatureWorkers: cfg.Workers, CandidateWorkers: 1, VerifyWorkers: cfg.Workers}
	inner := obs.NewCollector()
	rec := obs.Tee(inner, cfg.Recorder)
	prog := newProgressSink(cfg.Progress)
	// windowFrom > 0 restricts every pass to the trailing cfg.Window
	// rows; the tail wrapper also hides the fast-path interfaces, so
	// the signature pass falls to the streamed fold over the window.
	windowFrom := 0
	if cfg.Window > 0 {
		if from := d.NumRows() - cfg.Window; from > 0 {
			windowFrom = from
		}
	}
	rowSrc := func() matrix.RowSource {
		src := matrix.RowSource(d.m.Stream())
		if windowFrom > 0 {
			src = &matrix.TailSource{Src: src, From: windowFrom}
		}
		return src
	}
	stick := prog.enter(PhaseSignatures)
	endSig := phaseSpan(rec, PhaseSignatures)
	start := time.Now()
	sigSrc := rowSrc()
	sig, _, err := computeMH(sigSrc, sigSrc, func() (*matrix.Matrix, error) { return d.m, nil }, cfg, stick)
	if err != nil {
		return nil, err
	}
	st.SignatureTime = endSig()
	rec.SetGauge(obs.GaugeSignatureWorkers, int64(cfg.Workers))
	rec.Add(obs.CounterSignatureCells, int64(sig.K)*int64(sig.M))
	rec.SetGauge(obs.GaugeSignatureBytes, int64(len(sig.Vals))*8)
	prog.finish(PhaseSignatures)

	var all []Pair
	var innerErr error
	var touches int64
	verifyPasses := 0
	ctick := prog.enter(PhaseCandidates)
	_, lst, err := lsh.OnlineCandidates(sig, cfg.R, cfg.L, func(band int, fresh []pairs.Pair) bool {
		vstart := time.Now()
		if len(fresh) > 0 {
			verifyPasses++ // ExactPairs scans the data only for non-empty batches
		}
		verified, vst, err := verify.ExactPairsParallel(rowSrc(), fresh, cfg.Threshold, cfg.Workers)
		st.VerifyTime += time.Since(vstart)
		if err != nil {
			innerErr = err
			return false
		}
		st.Candidates += len(fresh)
		touches += vst.Touches
		batch := toPairs(verified, true)
		all = append(all, batch...)
		if ctick != nil {
			ctick(int64(band+1), int64(cfg.L))
		}
		return fn(Progress{
			Band:       band,
			Bands:      cfg.L,
			Fresh:      batch,
			TotalFound: len(all),
		})
	})
	if innerErr != nil {
		return nil, innerErr
	}
	if err != nil {
		return nil, err
	}
	st.CandidateTime = time.Since(start) - st.SignatureTime - st.VerifyTime
	st.Verified = len(all)
	st.DataPasses = 1 + verifyPasses // signature pass + per-band verify passes
	st.RowsScanned = int64(st.DataPasses) * int64(d.NumRows()-windowFrom)
	// The candidate and verify phases interleave band by band, so their
	// spans are reported once at completion with the accumulated
	// durations (the same values Stats records).
	rec.PhaseStart(PhaseCandidates)
	rec.PhaseEnd(PhaseCandidates, st.CandidateTime)
	rec.PhaseStart(PhaseVerify)
	rec.PhaseEnd(PhaseVerify, st.VerifyTime)
	rec.SetGauge(obs.GaugeVerifyWorkers, int64(cfg.Workers))
	rec.Add(obs.CounterBucketPairs, lst.BucketPairs)
	rec.Add(obs.CounterVerifyTouches, touches)
	rec.Add(obs.CounterDataPasses, int64(st.DataPasses))
	rec.Add(obs.CounterRowsScanned, st.RowsScanned)
	rec.Add(obs.CounterCandidates, int64(st.Candidates))
	rec.Add(obs.CounterPairsVerified, int64(st.Verified))
	st.FalsePositives = st.Candidates - st.Verified
	rec.Add(obs.CounterFalsePositives, int64(st.FalsePositives))
	prog.finish(PhaseCandidates)
	prog.enter(PhaseVerify)
	prog.finish(PhaseVerify)
	st.fillFrom(inner)
	sortPairsBySimilarity(all)
	return &Result{Pairs: all, Stats: st}, nil
}

func sortPairsBySimilarity(ps []Pair) {
	// Insertion-friendly sizes are typical; use the pairs package
	// ordering via a conversion to keep one canonical sort.
	scored := make([]pairs.Scored, len(ps))
	for i, p := range ps {
		scored[i] = pairs.Scored{Pair: pairs.Make(int32(p.I), int32(p.J)), Estimate: p.Estimate, Exact: p.Similarity}
	}
	pairs.SortScored(scored)
	for i, s := range scored {
		ps[i] = Pair{I: int(s.I), J: int(s.J), Estimate: s.Estimate, Similarity: s.Exact}
	}
}
