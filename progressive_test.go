package assocmine

import (
	"testing"
)

func TestProgressiveSimilarPairsMatchesBatch(t *testing.T) {
	d, _ := plantedDataset(t)
	cfg := Config{Algorithm: MinLSH, Threshold: 0.7, K: 100, R: 5, L: 20, Seed: 5}
	batch, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	prog, err := ProgressiveSimilarPairs(d, cfg, func(p Progress) bool {
		calls++
		if p.Bands != 20 {
			t.Errorf("Bands = %d, want 20", p.Bands)
		}
		for _, pr := range p.Fresh {
			if pr.Similarity < 0.7 {
				t.Errorf("fresh pair %+v below threshold", pr)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 20 {
		t.Errorf("callback called %d times, want 20", calls)
	}
	if len(prog.Pairs) != len(batch.Pairs) {
		t.Fatalf("progressive found %d pairs, batch %d", len(prog.Pairs), len(batch.Pairs))
	}
	for i := range batch.Pairs {
		if prog.Pairs[i] != batch.Pairs[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, prog.Pairs[i], batch.Pairs[i])
		}
	}
}

func TestProgressiveEarlyStop(t *testing.T) {
	d, _ := plantedDataset(t)
	cfg := Config{Algorithm: MinLSH, Threshold: 0.7, K: 100, R: 5, L: 20, Seed: 5}
	calls := 0
	res, err := ProgressiveSimilarPairs(d, cfg, func(p Progress) bool {
		calls++
		return p.Band < 4 // stop after 5 bands
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("callback called %d times, want 5", calls)
	}
	// Early results are a subset of the full run and already verified.
	full, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fullSet := map[[2]int]bool{}
	for _, p := range full.Pairs {
		fullSet[[2]int{p.I, p.J}] = true
	}
	for _, p := range res.Pairs {
		if !fullSet[[2]int{p.I, p.J}] {
			t.Errorf("early pair (%d,%d) not in the full run", p.I, p.J)
		}
	}
}

// TestProgressiveHighSimilarityFirst: the paper observes "the higher
// the similarity, the earlier the pair is likely to be discovered".
// With many bands, near-duplicate pairs should, on average, show up in
// earlier bands than borderline ones.
func TestProgressiveHighSimilarityFirst(t *testing.T) {
	d, _ := plantedDataset(t)
	cfg := Config{Algorithm: MinLSH, Threshold: 0.45, K: 120, R: 3, L: 40, Seed: 6}
	firstBand := map[[2]int]int{}
	_, err := ProgressiveSimilarPairs(d, cfg, func(p Progress) bool {
		for _, pr := range p.Fresh {
			key := [2]int{pr.I, pr.J}
			if _, ok := firstBand[key]; !ok {
				firstBand[key] = p.Band
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var hiSum, hiN, loSum, loN float64
	for key, band := range firstBand {
		s := d.Similarity(key[0], key[1])
		switch {
		case s >= 0.85:
			hiSum += float64(band)
			hiN++
		case s < 0.6:
			loSum += float64(band)
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skip("fixture lacks pairs in one band class")
	}
	if hiSum/hiN > loSum/loN {
		t.Errorf("high-similarity pairs discovered later on average (%.2f) than low (%.2f)",
			hiSum/hiN, loSum/loN)
	}
}

func TestProgressiveValidation(t *testing.T) {
	d, _ := NewDatasetFromRows(2, [][]int{{0}, {1}})
	if _, err := ProgressiveSimilarPairs(d, Config{Algorithm: MinHash, Threshold: 0.5}, func(Progress) bool { return true }); err == nil {
		t.Error("non-MinLSH algorithm accepted")
	}
	if _, err := ProgressiveSimilarPairs(d, Config{Algorithm: MinLSH, Threshold: 0.5, K: 4, R: 5, L: 2}, func(Progress) bool { return true }); err == nil {
		t.Error("K < R*L accepted")
	}
	if _, err := ProgressiveSimilarPairs(d, Config{Algorithm: MinLSH, Threshold: 0.5}, nil); err == nil {
		t.Error("nil callback accepted")
	}
}
