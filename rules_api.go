package assocmine

import (
	"context"
	"fmt"
	"time"

	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
	"assocmine/internal/rules"
)

// Rule is a directed high-confidence association rule From => To
// (Section 6: association rules without support pruning).
type Rule struct {
	From, To int
	// Estimate is the signature-based confidence estimate.
	Estimate float64
	// Confidence is the exact verified confidence.
	Confidence float64
}

// OrRule is a disjunctive rule From => To[0] ∨ To[1] (Section 7).
type OrRule struct {
	From     int
	To       [2]int
	Estimate float64
	// Similarity is the exact verified similarity between the
	// antecedent and the OR of the consequents.
	Similarity float64
}

// AndRule is a conjunctive rule From => To[0] ∧ To[1] (Section 7).
type AndRule struct {
	From     int
	To       [2]int
	Estimate float64
}

// RuleConfig controls MineRules.
type RuleConfig struct {
	// MinConfidence is the confidence threshold. Required, in (0,1].
	MinConfidence float64
	// K is the number of min-hash values; default 200 (confidence
	// estimation needs a bigger sketch than similarity, as Section 6
	// notes).
	K int
	// Delta loosens the candidate filter: candidates need estimated
	// confidence >= (1-Delta)*MinConfidence. Default 0.3.
	Delta float64
	// Seed drives hashing.
	Seed uint64
	// SkipVerify skips the exact confidence pass.
	SkipVerify bool
	// Context, when non-nil, cancels the run: the signature and
	// verification scans check it at row granularity and return
	// ctx.Err() promptly once it is done. nil means run to completion.
	Context context.Context
}

func (c *RuleConfig) setDefaults() error {
	if c.MinConfidence <= 0 || c.MinConfidence > 1 {
		return fmt.Errorf("assocmine: MinConfidence must be in (0,1], got %v", c.MinConfidence)
	}
	if c.K == 0 {
		c.K = 200
	}
	if c.K < 1 {
		return fmt.Errorf("assocmine: K must be positive, got %d", c.K)
	}
	if c.Delta == 0 {
		c.Delta = 0.3
	}
	if c.Delta < 0 || c.Delta >= 1 {
		return fmt.Errorf("assocmine: Delta must be in [0,1), got %v", c.Delta)
	}
	return nil
}

// RulesResult is the output of MineRules.
type RulesResult struct {
	Rules []Rule
	Stats Stats
}

// MineRules finds all rules c_i => c_j with confidence >=
// cfg.MinConfidence, regardless of support, using min-hash confidence
// estimation (Section 6) followed by exact verification.
func MineRules(d *Dataset, cfg RuleConfig) (*RulesResult, error) {
	return mineRules(d.m.Stream(), cfg)
}

// MineRules mines rules straight from the file: one sequential pass for
// the signature sketch, one for exact confidence verification.
func (f *FileDataset) MineRules(cfg RuleConfig) (*RulesResult, error) {
	return mineRules(f.src, cfg)
}

// MineRulesWithSignatures answers a rules query from a resident
// min-hash sketch: the Section 6 confidence estimation runs over the
// precomputed signatures (skipping the signature pass entirely) and
// only the exact verification pass scans d. cfg.K is ignored — the
// sketch's own K governs estimation accuracy, so serve rule queries
// from a sketch computed with K >= 200.
func MineRulesWithSignatures(d *Dataset, s *Signatures, cfg RuleConfig) (*RulesResult, error) {
	if s.sig.M != d.NumCols() {
		return nil, fmt.Errorf("assocmine: sketch covers %d columns, dataset has %d", s.sig.M, d.NumCols())
	}
	cfg.K = s.sig.K
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return rulesFromSignatures(d.m.Stream(), s.sig, cfg, Stats{Algorithm: MinHash})
}

func mineRules(src matrix.RowSource, cfg RuleConfig) (*RulesResult, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	st := Stats{Algorithm: MinHash}
	start := time.Now()
	sigSrc := src
	if cfg.Context != nil {
		sigSrc = matrix.WithContext(cfg.Context, sigSrc)
	}
	sig, err := minhash.Compute(sigSrc, cfg.K, cfg.Seed)
	if err != nil {
		return nil, err
	}
	st.SignatureTime = time.Since(start)
	return rulesFromSignatures(src, sig, cfg, st)
}

// rulesFromSignatures runs the candidate and verification phases of a
// rules query over an already-computed sketch; src supplies the exact
// confidence pass. cfg must already have defaults applied.
func rulesFromSignatures(src matrix.RowSource, sig *minhash.Signatures, cfg RuleConfig, st Stats) (*RulesResult, error) {
	start := time.Now()
	cand, err := rules.Candidates(sig, rules.Options{
		MinConfidence: (1 - cfg.Delta) * cfg.MinConfidence,
	})
	if err != nil {
		return nil, err
	}
	st.CandidateTime = time.Since(start)
	st.Candidates = len(cand)

	if cfg.SkipVerify {
		out := make([]Rule, len(cand))
		for i, r := range cand {
			out[i] = Rule{From: int(r.From), To: int(r.To), Estimate: r.Estimate}
		}
		return &RulesResult{Rules: out, Stats: st}, nil
	}
	start = time.Now()
	if cfg.Context != nil {
		src = matrix.WithContext(cfg.Context, src)
	}
	verified, err := rules.Verify(src, cand, cfg.MinConfidence)
	if err != nil {
		return nil, err
	}
	st.VerifyTime = time.Since(start)
	st.Verified = len(verified)
	out := make([]Rule, len(verified))
	for i, r := range verified {
		out[i] = Rule{From: int(r.From), To: int(r.To), Estimate: r.Estimate, Confidence: r.Exact}
	}
	return &RulesResult{Rules: out, Stats: st}, nil
}

// OrRules finds disjunctive rules c_i => c_j ∨ c_j2 (Section 7). The
// consequent pairs tried for each antecedent come from shortlist; use
// the consequents of verified single rules or of similar pairs.
func OrRules(d *Dataset, shortlist map[int][]int, minSim float64, k int, seed uint64) ([]OrRule, error) {
	if k == 0 {
		k = 200
	}
	sig, err := minhash.Compute(d.m.Stream(), k, seed)
	if err != nil {
		return nil, err
	}
	conv := make(map[int32][]int32, len(shortlist))
	for from, tos := range shortlist {
		lst := make([]int32, len(tos))
		for i, t := range tos {
			lst[i] = int32(t)
		}
		conv[int32(from)] = lst
	}
	ors, err := rules.OrCandidates(sig, conv, minSim)
	if err != nil {
		return nil, err
	}
	verified, err := rules.VerifyOrRules(d.m, ors, minSim)
	if err != nil {
		return nil, err
	}
	out := make([]OrRule, len(verified))
	for i, r := range verified {
		out[i] = OrRule{
			From: int(r.From), To: [2]int{int(r.To[0]), int(r.To[1])},
			Estimate: r.Estimate, Similarity: r.Exact,
		}
	}
	return out, nil
}

// AndRules derives conjunctive rules c_i => c_j ∧ c_j2 from verified
// single rules (Section 7's cardinality construction).
func AndRules(verified []Rule, minConf float64) ([]AndRule, error) {
	conv := make([]rules.Rule, len(verified))
	for i, r := range verified {
		conv[i] = rules.Rule{From: int32(r.From), To: int32(r.To), Estimate: r.Estimate, Exact: r.Confidence}
	}
	ands, err := rules.AndCandidates(conv, minConf)
	if err != nil {
		return nil, err
	}
	out := make([]AndRule, len(ands))
	for i, r := range ands {
		out[i] = AndRule{From: int(r.From), To: [2]int{int(r.To[0]), int(r.To[1])}, Estimate: r.Estimate}
	}
	return out, nil
}
