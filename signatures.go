package assocmine

import (
	"fmt"
	"os"

	"assocmine/internal/candidate"
	"assocmine/internal/lsh"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
	"assocmine/internal/obs"
	"assocmine/internal/pairs"
	"assocmine/internal/verify"
)

// Signatures is a precomputed min-hash sketch of a dataset. Computing
// signatures is the expensive full-scan phase; a precomputed sketch can
// be persisted and reused across queries with different thresholds or
// MinLSH band layouts (any R, L with R*L <= K), paying only the cheap
// in-memory candidate phase plus one verification pass per query.
type Signatures struct {
	sig  *minhash.Signatures
	seed uint64
	rows int // dataset row count, -1 when unknown (loaded sketches)
}

// ComputeSignatures runs the phase-1 scan once. Workers follow the
// Config.Workers semantic: 0 or 1 serial, negative GOMAXPROCS, > 1
// parallel — with bit-identical results either way.
func ComputeSignatures(d *Dataset, k int, seed uint64, workers int) (*Signatures, error) {
	var (
		sig *minhash.Signatures
		err error
	)
	if workers = normalizeWorkers(workers); workers > 1 {
		sig, err = minhash.ComputeParallel(d.m, k, seed, workers)
	} else {
		sig, err = minhash.Compute(d.m.Stream(), k, seed)
	}
	if err != nil {
		return nil, err
	}
	return &Signatures{sig: sig, seed: seed, rows: d.NumRows()}, nil
}

// K returns the number of min-hash values per column.
func (s *Signatures) K() int { return s.sig.K }

// NumCols returns the number of columns sketched.
func (s *Signatures) NumCols() int { return s.sig.M }

// Seed returns the seed the sketch was computed with.
func (s *Signatures) Seed() uint64 { return s.seed }

// Estimate returns the sketch similarity estimate for columns i and j.
func (s *Signatures) Estimate(i, j int) float64 { return s.sig.Estimate(i, j) }

// Save persists the sketch to path.
func (s *Signatures) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.sig.WriteTo(f, s.seed)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SaveCompressed persists the sketch in the compressed AMC1 format:
// each cell stored as its argmin row id in a few bits instead of a raw
// 64-bit hash value, typically 5-6x smaller, loading back bit-identical
// through LoadSignatures. Only sketches produced by ComputeSignatures
// in this process know their dataset's row count; loaded sketches
// cannot be re-saved compressed.
func (s *Signatures) SaveCompressed(path string) error {
	if s.rows < 0 {
		return fmt.Errorf("assocmine: sketch row count unknown; only sketches from ComputeSignatures can be saved compressed")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.sig.WriteCompressed(f, s.seed, s.rows)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadSignatures reads a sketch written by Save or SaveCompressed.
func LoadSignatures(path string) (*Signatures, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sig, seed, err := minhash.ReadSignatures(f)
	if err != nil {
		return nil, err
	}
	return &Signatures{sig: sig, seed: seed, rows: -1}, nil
}

// SimilarPairsWithSignatures answers a similar-pairs query from a
// precomputed sketch, skipping the signature pass entirely. Supported
// algorithms: MinHash (Row-Sorting over the sketch) and MinLSH (banding
// over the sketch; requires R*L <= the sketch's K). Verification still
// makes one pass over d — or over its trailing cfg.Window rows when a
// sliding window is set, for sketches that cover only that window.
func SimilarPairsWithSignatures(d *Dataset, s *Signatures, cfg Config) (*Result, error) {
	if s.sig.M != d.NumCols() {
		return nil, fmt.Errorf("assocmine: sketch covers %d columns, dataset has %d", s.sig.M, d.NumCols())
	}
	cfg.K = s.sig.K
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	st := Stats{Algorithm: cfg.Algorithm, SignatureWorkers: 1, CandidateWorkers: 1, VerifyWorkers: 1}
	inner := obs.NewCollector()
	rec := obs.Tee(inner, cfg.Recorder)
	prog := newProgressSink(cfg.Progress)
	// The signature phase was paid when the sketch was computed, so no
	// signature span or cell counter here; the gauge still reports the
	// sketch's resident size.
	rec.SetGauge(obs.GaugeSignatureBytes, int64(len(s.sig.Vals))*8)
	var cand []pairs.Scored
	tick := prog.enter(PhaseCandidates)
	end := phaseSpan(rec, PhaseCandidates)
	switch cfg.Algorithm {
	case MinHash:
		cutoff := (1 - cfg.Delta) * cfg.Threshold
		var cst candidate.Stats
		var err error
		cand, cst, err = candidate.RowSortMHParallelProgress(cfg.context(), s.sig, cutoff, cfg.Workers, tick)
		if err != nil {
			return nil, err
		}
		rec.Add(obs.CounterIncrements, cst.Increments)
	case MinLSH:
		if s.sig.K < cfg.R*cfg.L {
			return nil, fmt.Errorf("assocmine: sketch K=%d cannot host %d bands of %d rows", s.sig.K, cfg.L, cfg.R)
		}
		set, lst, err := lsh.CandidatesParallelProgress(cfg.context(), s.sig, cfg.R, cfg.L, cfg.Workers, tick)
		if err != nil {
			return nil, err
		}
		for _, p := range set.Slice() {
			cand = append(cand, pairs.Scored{Pair: p})
		}
		rec.Add(obs.CounterBucketPairs, lst.BucketPairs)
	default:
		return nil, fmt.Errorf("assocmine: precomputed signatures support MinHash and MinLSH, got %v", cfg.Algorithm)
	}
	st.CandidateTime = end()
	st.CandidateWorkers = cfg.Workers
	rec.SetGauge(obs.GaugeCandidateWorkers, int64(cfg.Workers))
	prog.finish(PhaseCandidates)
	st.Candidates = len(cand)
	rec.Add(obs.CounterCandidates, int64(st.Candidates))
	if cfg.SkipVerify {
		pairs.SortScored(cand)
		st.fillFrom(inner)
		return &Result{Pairs: toPairs(cand, false), Stats: st}, nil
	}
	tick = prog.enter(PhaseVerify)
	end = phaseSpan(rec, PhaseVerify)
	vsrc := matrix.RowSource(d.m.Stream())
	if cfg.Window > 0 {
		// Verify over the trailing window only — the mode used when the
		// sketch itself covers a window (e.g. one produced by an Ingest
		// in sliding-window mode). The tail wrapper hides the in-memory
		// fast-path interfaces, so the packed and parallel kernels fall
		// to plain scans that see only the window's rows; ids are
		// preserved, so candidate pairs from the sketch line up.
		if from := d.NumRows() - cfg.Window; from > 0 {
			vsrc = &matrix.TailSource{Src: vsrc, From: from}
		}
	}
	if cfg.Context != nil {
		vsrc = matrix.WithContext(cfg.Context, vsrc)
	}
	var verified []pairs.Scored
	var vst verify.Stats
	var err error
	if cfg.VerifyKernel == KernelPacked ||
		(cfg.VerifyKernel == KernelAuto && verify.AutoPack(d.NumRows(), d.NumCols(), cand, 0)) {
		// The packed pass ticks candidate pairs itself, so vsrc keeps
		// its row-granularity wrapper off.
		verified, vst, err = verify.ExactPacked(vsrc, cand, cfg.Threshold, verify.PackedOptions{
			Workers: cfg.Workers,
			Context: cfg.Context,
			Tick:    tick,
		})
	} else {
		if tick != nil {
			vsrc = &matrix.ProgressSource{Src: vsrc, Tick: tick}
		}
		verified, vst, err = verify.ExactParallel(vsrc, cand, cfg.Threshold, cfg.Workers)
	}
	if err != nil {
		return nil, err
	}
	st.VerifyTime = end()
	st.VerifyWorkers = cfg.Workers
	rec.SetGauge(obs.GaugeVerifyWorkers, int64(cfg.Workers))
	rec.Add(obs.CounterVerifyTouches, vst.Touches)
	addNonzero(rec, obs.CounterPackedWords, vst.PackedWords)
	addNonzero(rec, obs.CounterPackedBatches, vst.PackedBatches)
	prog.finish(PhaseVerify)
	st.Verified = len(verified)
	st.FalsePositives = st.Candidates - st.Verified
	st.DataPasses = 1
	scanned := d.NumRows()
	if cfg.Window > 0 && cfg.Window < scanned {
		scanned = cfg.Window
	}
	st.RowsScanned = int64(scanned)
	rec.Add(obs.CounterPairsVerified, int64(st.Verified))
	rec.Add(obs.CounterFalsePositives, int64(st.FalsePositives))
	rec.Add(obs.CounterDataPasses, 1)
	rec.Add(obs.CounterRowsScanned, st.RowsScanned)
	st.fillFrom(inner)
	pairs.SortScored(verified)
	return &Result{Pairs: toPairs(verified, true), Stats: st}, nil
}
