package assocmine

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSignaturesRoundTrip(t *testing.T) {
	d, _ := plantedDataset(t)
	s, err := ComputeSignatures(d, 40, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 40 || s.NumCols() != d.NumCols() || s.Seed() != 7 {
		t.Fatalf("metadata: k=%d m=%d seed=%d", s.K(), s.NumCols(), s.Seed())
	}
	path := filepath.Join(t.TempDir(), "sketch.amh")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSignatures(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K() != s.K() || loaded.Seed() != s.Seed() {
		t.Fatal("metadata did not round trip")
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if loaded.Estimate(i, j) != s.Estimate(i, j) {
				t.Fatalf("estimate (%d,%d) differs after round trip", i, j)
			}
		}
	}
}

// TestSignaturesCompressedRoundTrip: SaveCompressed must load back
// bit-identical through LoadSignatures while writing a smaller file,
// and a loaded sketch (row count unknown) must refuse to re-save
// compressed.
func TestSignaturesCompressedRoundTrip(t *testing.T) {
	d, _ := plantedDataset(t)
	s, err := ComputeSignatures(d, 40, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	raw := filepath.Join(dir, "sketch.amh")
	comp := filepath.Join(dir, "sketch.amc")
	if err := s.Save(raw); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCompressed(comp); err != nil {
		t.Fatal(err)
	}
	ri, err := os.Stat(raw)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := os.Stat(comp)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Size()*3 > ri.Size() {
		t.Errorf("compressed sketch %d bytes, raw %d: expected at least 3x", ci.Size(), ri.Size())
	}
	loaded, err := LoadSignatures(comp)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K() != s.K() || loaded.Seed() != s.Seed() || loaded.NumCols() != s.NumCols() {
		t.Fatal("metadata did not round trip")
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if loaded.Estimate(i, j) != s.Estimate(i, j) {
				t.Fatalf("estimate (%d,%d) differs after compressed round trip", i, j)
			}
		}
	}
	if err := loaded.SaveCompressed(filepath.Join(dir, "again.amc")); err == nil {
		t.Error("loaded sketch re-saved compressed despite unknown row count")
	}
}

func TestSignaturesParallelIdentical(t *testing.T) {
	d, _ := plantedDataset(t)
	a, err := ComputeSignatures(d, 30, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeSignatures(d, 30, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if a.Estimate(i, j) != b.Estimate(i, j) {
				t.Fatal("parallel sketch differs from serial")
			}
		}
	}
}

// TestSimilarPairsWithSignaturesMatchesDirect: answering from the
// precomputed sketch must equal the one-shot pipeline with the same
// seed and K.
func TestSimilarPairsWithSignaturesMatchesDirect(t *testing.T) {
	d, _ := plantedDataset(t)
	s, err := ComputeSignatures(d, 60, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Algorithm: MinHash, Threshold: 0.6, K: 60, Seed: 5},
		{Algorithm: MinLSH, Threshold: 0.6, K: 60, R: 3, L: 20, Seed: 5},
	} {
		direct, err := SimilarPairs(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fromSketch, err := SimilarPairsWithSignatures(d, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct.Pairs) != len(fromSketch.Pairs) {
			t.Fatalf("%v: %d pairs direct, %d from sketch",
				cfg.Algorithm, len(direct.Pairs), len(fromSketch.Pairs))
		}
		for i := range direct.Pairs {
			if direct.Pairs[i] != fromSketch.Pairs[i] {
				t.Fatalf("%v: pair %d differs", cfg.Algorithm, i)
			}
		}
		if fromSketch.Stats.SignatureTime != 0 {
			t.Errorf("%v: sketch-based query claims signature time", cfg.Algorithm)
		}
	}
}

// TestSignatureReuseAcrossQueries: one sketch answers multiple
// thresholds and band layouts.
func TestSignatureReuseAcrossQueries(t *testing.T) {
	d, _ := plantedDataset(t)
	s, err := ComputeSignatures(d, 100, 9, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range []float64{0.5, 0.7, 0.9} {
		res, err := SimilarPairsWithSignatures(d, s, Config{
			Algorithm: MinLSH, Threshold: th, R: 5, L: 20,
		})
		if err != nil {
			t.Fatalf("threshold %v: %v", th, err)
		}
		for _, p := range res.Pairs {
			if p.Similarity < th {
				t.Errorf("threshold %v: pair %+v below threshold", th, p)
			}
		}
	}
}

func TestSimilarPairsWithSignaturesValidation(t *testing.T) {
	d, _ := NewDatasetFromRows(4, [][]int{{0, 1}, {0, 1}, {2}, {3}})
	s, err := ComputeSignatures(d, 20, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimilarPairsWithSignatures(d, s, Config{Algorithm: HammingLSH, Threshold: 0.5}); err == nil {
		t.Error("HammingLSH from sketch accepted")
	}
	if _, err := SimilarPairsWithSignatures(d, s, Config{Algorithm: MinLSH, Threshold: 0.5, R: 10, L: 10}); err == nil {
		t.Error("R*L > K accepted")
	}
	other, _ := NewDatasetFromRows(2, [][]int{{0}, {1}})
	if _, err := SimilarPairsWithSignatures(other, s, Config{Algorithm: MinHash, Threshold: 0.5}); err == nil {
		t.Error("column-count mismatch accepted")
	}
}

func TestLoadSignaturesErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadSignatures(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad")
	if err := writeFile(bad, []byte("NOPE")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSignatures(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
