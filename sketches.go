package assocmine

import (
	"fmt"
	"os"

	"assocmine/internal/candidate"
	"assocmine/internal/kminhash"
	"assocmine/internal/matrix"
	"assocmine/internal/obs"
	"assocmine/internal/pairs"
	"assocmine/internal/verify"
)

// Sketches is a precomputed bottom-k (K-MH) sketch of a dataset — the
// K-MinHash counterpart of Signatures. Computing the sketch is the
// expensive full-scan phase; a persisted sketch can be reused across
// queries with different thresholds, paying only the in-memory
// candidate phase plus one verification pass per query.
type Sketches struct {
	sk   *kminhash.Sketches
	seed uint64
	rows int // dataset row count, -1 when unknown (loaded sketches)
}

// ComputeSketches runs the K-MH phase-1 scan once. Workers follow the
// Config.Workers semantic: 0 or 1 serial, negative GOMAXPROCS, > 1
// parallel — with identical sketch content either way.
func ComputeSketches(d *Dataset, k int, seed uint64, workers int) (*Sketches, error) {
	var (
		sk  *kminhash.Sketches
		err error
	)
	if workers = normalizeWorkers(workers); workers > 1 {
		sk, err = kminhash.ComputeParallel(d.m, k, seed, workers)
	} else {
		sk, err = kminhash.Compute(d.m.Stream(), k, seed)
	}
	if err != nil {
		return nil, err
	}
	return &Sketches{sk: sk, seed: seed, rows: d.NumRows()}, nil
}

// K returns the sketch size bound (columns smaller than K keep all
// their values).
func (s *Sketches) K() int { return s.sk.K }

// NumCols returns the number of columns sketched.
func (s *Sketches) NumCols() int { return len(s.sk.Sigs) }

// Seed returns the seed the sketch was computed with.
func (s *Sketches) Seed() uint64 { return s.seed }

// Estimate returns the unbiased union-signature similarity estimate for
// columns i and j (Theorem 2).
func (s *Sketches) Estimate(i, j int) float64 { return s.sk.UnbiasedEstimate(i, j) }

// Save persists the sketch in the compressed KMC1 format (each value
// stored as its row id in a few bits), loading back bit-identical
// through LoadSketches. Only sketches whose dataset row count is known
// (ComputeSketches, Ingest) can be saved; loaded sketches cannot be
// re-saved.
func (s *Sketches) Save(path string) error {
	if s.rows < 0 {
		return fmt.Errorf("assocmine: sketch row count unknown; only sketches from ComputeSketches can be saved")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.sk.WriteCompressed(f, s.seed, s.rows)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadSketches reads a sketch written by Save.
func LoadSketches(path string) (*Sketches, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sk, seed, err := kminhash.ReadSketches(f)
	if err != nil {
		return nil, err
	}
	return &Sketches{sk: sk, seed: seed, rows: -1}, nil
}

// SimilarPairsWithSketches answers a KMinHash similar-pairs query from
// a precomputed bottom-k sketch, skipping the signature pass entirely
// (cfg.Algorithm must be KMinHash or left zero — it is forced).
// Verification still makes one pass over d — or over its trailing
// cfg.Window rows when a sliding window is set, for sketches that cover
// only that window.
func SimilarPairsWithSketches(d *Dataset, s *Sketches, cfg Config) (*Result, error) {
	if len(s.sk.Sigs) != d.NumCols() {
		return nil, fmt.Errorf("assocmine: sketch covers %d columns, dataset has %d", len(s.sk.Sigs), d.NumCols())
	}
	if cfg.Algorithm != KMinHash && cfg.Algorithm != BruteForce {
		return nil, fmt.Errorf("assocmine: precomputed bottom-k sketches support KMinHash, got %v", cfg.Algorithm)
	}
	cfg.Algorithm = KMinHash
	cfg.K = s.sk.K
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	st := Stats{Algorithm: KMinHash, SignatureWorkers: 1, CandidateWorkers: 1, VerifyWorkers: 1}
	inner := obs.NewCollector()
	rec := obs.Tee(inner, cfg.Recorder)
	prog := newProgressSink(cfg.Progress)
	// The signature phase was paid when the sketch was computed; the
	// gauge still reports the sketch's resident size.
	var cells int64
	for _, sig := range s.sk.Sigs {
		cells += int64(len(sig))
	}
	rec.SetGauge(obs.GaugeSignatureBytes, cells*8)
	tick := prog.enter(PhaseCandidates)
	end := phaseSpan(rec, PhaseCandidates)
	cutoff := (1 - cfg.Delta) * cfg.Threshold
	opt := candidate.KMHOptions{
		BiasedCutoff:   cutoff / 2, // biased estimator under-counts; be generous
		UnbiasedCutoff: cutoff,
	}
	cand, cst, err := candidate.HashCountKMHParallelProgress(cfg.context(), s.sk, opt, cfg.Workers, tick)
	if err != nil {
		return nil, err
	}
	rec.Add(obs.CounterIncrements, cst.Increments)
	st.CandidateTime = end()
	st.CandidateWorkers = cfg.Workers
	rec.SetGauge(obs.GaugeCandidateWorkers, int64(cfg.Workers))
	prog.finish(PhaseCandidates)
	st.Candidates = len(cand)
	rec.Add(obs.CounterCandidates, int64(st.Candidates))
	if cfg.SkipVerify {
		pairs.SortScored(cand)
		st.fillFrom(inner)
		return &Result{Pairs: toPairs(cand, false), Stats: st}, nil
	}
	tick = prog.enter(PhaseVerify)
	end = phaseSpan(rec, PhaseVerify)
	vsrc := matrix.RowSource(d.m.Stream())
	if cfg.Window > 0 {
		// The tail wrapper hides the in-memory fast-path interfaces, so
		// the kernels below fall to plain scans over the window's rows.
		if from := d.NumRows() - cfg.Window; from > 0 {
			vsrc = &matrix.TailSource{Src: vsrc, From: from}
		}
	}
	if cfg.Context != nil {
		vsrc = matrix.WithContext(cfg.Context, vsrc)
	}
	var verified []pairs.Scored
	var vst verify.Stats
	if cfg.VerifyKernel == KernelPacked ||
		(cfg.VerifyKernel == KernelAuto && verify.AutoPack(d.NumRows(), d.NumCols(), cand, 0)) {
		// The packed pass ticks candidate pairs itself, so vsrc keeps
		// its row-granularity wrapper off.
		verified, vst, err = verify.ExactPacked(vsrc, cand, cfg.Threshold, verify.PackedOptions{
			Workers: cfg.Workers,
			Context: cfg.Context,
			Tick:    tick,
		})
	} else {
		if tick != nil {
			vsrc = &matrix.ProgressSource{Src: vsrc, Tick: tick}
		}
		verified, vst, err = verify.ExactParallel(vsrc, cand, cfg.Threshold, cfg.Workers)
	}
	if err != nil {
		return nil, err
	}
	st.VerifyTime = end()
	st.VerifyWorkers = cfg.Workers
	rec.SetGauge(obs.GaugeVerifyWorkers, int64(cfg.Workers))
	rec.Add(obs.CounterVerifyTouches, vst.Touches)
	addNonzero(rec, obs.CounterPackedWords, vst.PackedWords)
	addNonzero(rec, obs.CounterPackedBatches, vst.PackedBatches)
	prog.finish(PhaseVerify)
	st.Verified = len(verified)
	st.FalsePositives = st.Candidates - st.Verified
	st.DataPasses = 1
	scanned := d.NumRows()
	if cfg.Window > 0 && cfg.Window < scanned {
		scanned = cfg.Window
	}
	st.RowsScanned = int64(scanned)
	rec.Add(obs.CounterPairsVerified, int64(st.Verified))
	rec.Add(obs.CounterFalsePositives, int64(st.FalsePositives))
	rec.Add(obs.CounterDataPasses, 1)
	rec.Add(obs.CounterRowsScanned, st.RowsScanned)
	st.fillFrom(inner)
	pairs.SortScored(verified)
	return &Result{Pairs: toPairs(verified, true), Stats: st}, nil
}
