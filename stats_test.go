package assocmine

import "testing"

// TestDataPassAccounting verifies the I/O accounting matches the
// paper's pass structure: signature phase = 1 pass, verification = 1
// pass; brute force = 1 pass; a-priori = 1 pass per level.
func TestDataPassAccounting(t *testing.T) {
	d, _ := plantedDataset(t)
	cases := []struct {
		cfg        Config
		wantPasses int
	}{
		{Config{Algorithm: BruteForce, Threshold: 0.5}, 1},
		{Config{Algorithm: MinHash, Threshold: 0.5, K: 30, Seed: 1}, 2},
		{Config{Algorithm: KMinHash, Threshold: 0.5, K: 30, Seed: 1}, 2},
		{Config{Algorithm: MinLSH, Threshold: 0.5, K: 30, R: 3, L: 10, Seed: 1}, 2},
	}
	for _, c := range cases {
		res, err := SimilarPairs(d, c.cfg)
		if err != nil {
			t.Fatalf("%v: %v", c.cfg.Algorithm, err)
		}
		if res.Stats.DataPasses != c.wantPasses {
			t.Errorf("%v: DataPasses = %d, want %d", c.cfg.Algorithm, res.Stats.DataPasses, c.wantPasses)
		}
		wantRows := int64(c.wantPasses) * int64(d.NumRows())
		if res.Stats.RowsScanned != wantRows {
			t.Errorf("%v: RowsScanned = %d, want %d", c.cfg.Algorithm, res.Stats.RowsScanned, wantRows)
		}
	}
	// SkipVerify: one pass fewer.
	res, err := SimilarPairs(d, Config{Algorithm: MinHash, Threshold: 0.5, K: 30, Seed: 1, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DataPasses != 1 {
		t.Errorf("SkipVerify MinHash passes = %d, want 1", res.Stats.DataPasses)
	}
	// Apriori: 1 pass per mined level.
	res, err = SimilarPairs(d, Config{Algorithm: Apriori, Threshold: 0.5, MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DataPasses < 1 || res.Stats.DataPasses > 3 {
		t.Errorf("Apriori passes = %d, want 1..3 (levels)", res.Stats.DataPasses)
	}
}
