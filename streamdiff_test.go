package assocmine

import (
	"fmt"
	"path/filepath"
	"testing"
)

// saveDataset writes d to a temp file in the given format and opens it
// as a streaming FileDataset.
func saveDataset(t *testing.T, d *Dataset, ext string) *FileDataset {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data"+ext)
	var err error
	switch ext {
	case ".arows":
		err = d.SaveRowBinary(path)
	case ".carows":
		err = d.SaveRowCompressed(path)
	default:
		err = d.Save(path)
	}
	if err != nil {
		t.Fatal(err)
	}
	fd, err := OpenFileDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	return fd
}

// comparePairSections checks the Stats fields that describe the mined
// pairs and the per-pair work — the sections that must be identical
// between the in-memory and out-of-core paths. Pass accounting
// (DataPasses, RowsScanned) legitimately differs: in-memory parallel
// runs materialise or scan concurrently, the streamed path always pays
// one sequential pass per phase.
func comparePairSections(t *testing.T, got, want Stats) {
	t.Helper()
	if got.Candidates != want.Candidates {
		t.Errorf("Candidates = %d, want %d", got.Candidates, want.Candidates)
	}
	if got.Verified != want.Verified {
		t.Errorf("Verified = %d, want %d", got.Verified, want.Verified)
	}
	if got.FalsePositives != want.FalsePositives {
		t.Errorf("FalsePositives = %d, want %d", got.FalsePositives, want.FalsePositives)
	}
	if got.SignatureCells != want.SignatureCells {
		t.Errorf("SignatureCells = %d, want %d", got.SignatureCells, want.SignatureCells)
	}
	if got.CandidateIncrements != want.CandidateIncrements {
		t.Errorf("CandidateIncrements = %d, want %d", got.CandidateIncrements, want.CandidateIncrements)
	}
	if got.BucketPairs != want.BucketPairs {
		t.Errorf("BucketPairs = %d, want %d", got.BucketPairs, want.BucketPairs)
	}
	if got.VerifyTouches != want.VerifyTouches {
		t.Errorf("VerifyTouches = %d, want %d", got.VerifyTouches, want.VerifyTouches)
	}
	if got.PairsSampled != want.PairsSampled {
		t.Errorf("PairsSampled = %d, want %d", got.PairsSampled, want.PairsSampled)
	}
	if got.SampleAccepts != want.SampleAccepts {
		t.Errorf("SampleAccepts = %d, want %d", got.SampleAccepts, want.SampleAccepts)
	}
	if got.SampleDups != want.SampleDups {
		t.Errorf("SampleDups = %d, want %d", got.SampleDups, want.SampleDups)
	}
}

// TestStreamedPipelineMatchesInMemory is the differential harness for
// the out-of-core path: seeded random datasets across sizes and
// densities, mined from disk (both file formats) and from memory, must
// produce bit-identical Results — same pairs, same estimates and exact
// similarities, same pair-section Stats — for every scheme with a
// signature phase, serial and parallel.
func TestStreamedPipelineMatchesInMemory(t *testing.T) {
	fixtures := []SyntheticOptions{
		{Rows: 700, Cols: 70, PairsPerRange: 2, Seed: 41},
		{Rows: 1600, Cols: 110, MinDensity: 0.02, MaxDensity: 0.1, PairsPerRange: 4, Seed: 43},
	}
	algos := []struct {
		name string
		cfg  Config
	}{
		{"MH", Config{Algorithm: MinHash, Threshold: 0.5, K: 50, Seed: 7}},
		{"K-MH", Config{Algorithm: KMinHash, Threshold: 0.5, K: 50, Seed: 7}},
		{"M-LSH", Config{Algorithm: MinLSH, Threshold: 0.5, K: 50, R: 5, L: 10, Seed: 7}},
	}
	for fi, opt := range fixtures {
		d, _, err := GenerateSynthetic(opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, ext := range []string{".txt", ".arows"} {
			fd := saveDataset(t, d, ext)
			for _, a := range algos {
				for _, workers := range []int{1, 4} {
					// The scalar run doubles as the cross-kernel reference:
					// the packed kernel must mine exactly its pairs with
					// exactly its Touches.
					var scalarPairs []Pair
					var scalarTouches int64
					for _, kernel := range []Kernel{KernelScalar, KernelPacked} {
						name := fmt.Sprintf("fixture%d%s/%s/workers=%d/%v", fi, ext, a.name, workers, kernel)
						t.Run(name, func(t *testing.T) {
							cfg := a.cfg
							cfg.Workers = workers
							cfg.VerifyKernel = kernel
							mem, err := SimilarPairs(d, cfg)
							if err != nil {
								t.Fatalf("in-memory: %v", err)
							}
							stream, err := fd.SimilarPairs(cfg)
							if err != nil {
								t.Fatalf("streamed: %v", err)
							}
							if len(stream.Pairs) != len(mem.Pairs) {
								t.Fatalf("%d pairs streamed, %d in memory", len(stream.Pairs), len(mem.Pairs))
							}
							for i := range mem.Pairs {
								if stream.Pairs[i] != mem.Pairs[i] {
									t.Fatalf("pair %d: %+v streamed, %+v in memory", i, stream.Pairs[i], mem.Pairs[i])
								}
							}
							comparePairSections(t, stream.Stats, mem.Stats)
							if stream.Stats.BytesRead <= 0 {
								t.Errorf("streamed run read %d bytes", stream.Stats.BytesRead)
							}
							if mem.Stats.BytesRead != 0 {
								t.Errorf("in-memory run reported %d bytes read", mem.Stats.BytesRead)
							}
							if workers > 1 && stream.Stats.ShardsStreamed <= 0 {
								t.Errorf("parallel streamed run broadcast %d shards", stream.Stats.ShardsStreamed)
							}
							if stream.Stats.SpillRuns != 0 || stream.Stats.SpillBytes != 0 {
								t.Errorf("unbudgeted run spilled: %+v", stream.Stats)
							}
							switch kernel {
							case KernelScalar:
								if stream.Stats.PackedBatches != 0 || mem.Stats.PackedBatches != 0 {
									t.Errorf("scalar kernel reported packed batches: stream %d, mem %d",
										stream.Stats.PackedBatches, mem.Stats.PackedBatches)
								}
								scalarPairs = append([]Pair(nil), mem.Pairs...)
								scalarTouches = mem.Stats.VerifyTouches
							case KernelPacked:
								if mem.Stats.Candidates > 0 && (stream.Stats.PackedBatches == 0 || mem.Stats.PackedBatches == 0) {
									t.Errorf("packed kernel reported no batches: stream %d, mem %d",
										stream.Stats.PackedBatches, mem.Stats.PackedBatches)
								}
								if scalarPairs == nil {
									t.Skip("scalar reference unavailable")
								}
								if len(mem.Pairs) != len(scalarPairs) {
									t.Fatalf("packed mined %d pairs, scalar %d", len(mem.Pairs), len(scalarPairs))
								}
								for i := range scalarPairs {
									if mem.Pairs[i] != scalarPairs[i] {
										t.Fatalf("pair %d: %+v packed, %+v scalar", i, mem.Pairs[i], scalarPairs[i])
									}
								}
								if mem.Stats.VerifyTouches != scalarTouches {
									t.Errorf("packed VerifyTouches = %d, scalar %d", mem.Stats.VerifyTouches, scalarTouches)
								}
							}
						})
					}
				}
			}
		}
	}
}

// TestStreamedMemoryBudget: mining a dataset whose verification counter
// table is several times the configured budget must trigger disk
// spills and still produce results identical to the unbudgeted
// in-memory run, with an attached Collector agreeing with Stats.
func TestStreamedMemoryBudget(t *testing.T) {
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 600, Cols: 120, MinDensity: 0.05, MaxDensity: 0.15, PairsPerRange: 4, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	fd := saveDataset(t, d, ".arows")
	// Delta close to 1 admits nearly every estimated pair, inflating the
	// candidate list well past the budget below.
	base := Config{Algorithm: MinHash, Threshold: 0.3, K: 40, Delta: 0.9, Seed: 13}
	mem, err := SimilarPairs(d, base)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Stats.Candidates*denseCounterBytesTest < 8*4096 {
		t.Fatalf("fixture too small to exceed the budget: %d candidates", mem.Stats.Candidates)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := base
			cfg.Workers = workers
			cfg.MemoryBudget = 4096
			col := NewCollector()
			cfg.Recorder = col
			stream, err := fd.SimilarPairs(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if stream.Stats.SpillRuns <= 0 || stream.Stats.SpillBytes <= 0 {
				t.Fatalf("budget %d did not spill: %+v", cfg.MemoryBudget, stream.Stats)
			}
			// The candidate bitmaps exceed this budget, so Auto must keep
			// the spilling scalar path rather than batch a packed arena.
			if stream.Stats.PackedBatches != 0 {
				t.Errorf("Auto packed an over-budget arena: %+v", stream.Stats)
			}
			if len(stream.Pairs) != len(mem.Pairs) {
				t.Fatalf("%d pairs budgeted, %d unbudgeted", len(stream.Pairs), len(mem.Pairs))
			}
			for i := range mem.Pairs {
				if stream.Pairs[i] != mem.Pairs[i] {
					t.Fatalf("pair %d: %+v budgeted, %+v unbudgeted", i, stream.Pairs[i], mem.Pairs[i])
				}
			}
			comparePairSections(t, stream.Stats, mem.Stats)
			if got := col.Counter(CounterSpillRuns); got != stream.Stats.SpillRuns {
				t.Errorf("collector spill_runs = %d, Stats.SpillRuns = %d", got, stream.Stats.SpillRuns)
			}
			if got := col.Counter(CounterSpillBytes); got != stream.Stats.SpillBytes {
				t.Errorf("collector spill_bytes = %d, Stats.SpillBytes = %d", got, stream.Stats.SpillBytes)
			}
			if got := col.Counter(CounterBytesRead); got != stream.Stats.BytesRead {
				t.Errorf("collector bytes_read = %d, Stats.BytesRead = %d", got, stream.Stats.BytesRead)
			}
		})
	}
	// An in-memory run under the same budget must also match (the
	// budgeted pass replaces the concurrent-scan strategy there).
	cfg := base
	cfg.Workers = 4
	cfg.MemoryBudget = 4096
	budgeted, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Stats.SpillRuns <= 0 {
		t.Fatalf("in-memory budgeted run did not spill: %+v", budgeted.Stats)
	}
	if len(budgeted.Pairs) != len(mem.Pairs) {
		t.Fatalf("%d pairs budgeted in-memory, %d unbudgeted", len(budgeted.Pairs), len(mem.Pairs))
	}
	for i := range mem.Pairs {
		if budgeted.Pairs[i] != mem.Pairs[i] {
			t.Fatalf("pair %d differs under in-memory budget", i)
		}
	}
}

// denseCounterBytesTest mirrors verify's per-candidate counter cost for
// the fixture-size sanity check above.
const denseCounterBytesTest = 12
