package assocmine

import (
	"fmt"

	"assocmine/internal/obs"
)

// TopPairs returns the n most similar column pairs without requiring
// the caller to guess a threshold: it runs the configured algorithm at
// cfg.Threshold and, when fewer than n pairs clear it, geometrically
// lowers the threshold and re-queries until n pairs are found or the
// floor is hit. cfg.Threshold acts as the starting point (default 0.9);
// minThreshold bounds the search from below (default 0.05 — below
// that, the near-zero mass makes "top pairs" meaningless on sparse
// data).
//
// With a precomputed-signature-friendly algorithm (MinHash, MinLSH)
// each retry reuses nothing but is still cheap; pair the call with
// ComputeSignatures/SimilarPairsWithSignatures when the dataset is
// large and the threshold is expected to drop several times.
// cfg.Workers carries through to every retry, parallelising all three
// phases of each attempt.
func TopPairs(d *Dataset, n int, cfg Config, minThreshold float64) ([]Pair, error) {
	if n <= 0 {
		return nil, fmt.Errorf("assocmine: TopPairs needs n > 0, got %d", n)
	}
	if minThreshold == 0 {
		minThreshold = 0.05
	}
	if minThreshold < 0 || minThreshold > 1 {
		return nil, fmt.Errorf("assocmine: minThreshold must be in (0,1], got %v", minThreshold)
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.9
	}
	if cfg.Threshold < minThreshold {
		return nil, fmt.Errorf("assocmine: starting threshold %v below floor %v", cfg.Threshold, minThreshold)
	}
	rec := obs.OrNop(cfg.Recorder)
	for {
		rec.Add(obs.CounterTopPairsAttempts, 1)
		res, err := SimilarPairs(d, cfg)
		if err != nil {
			return nil, err
		}
		if len(res.Pairs) >= n {
			return res.Pairs[:n], nil
		}
		if cfg.Threshold <= minThreshold {
			// Floor reached: return everything found.
			return res.Pairs, nil
		}
		cfg.Threshold *= 0.7
		if cfg.Threshold < minThreshold {
			cfg.Threshold = minThreshold
		}
	}
}
