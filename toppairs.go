package assocmine

import (
	"fmt"

	"assocmine/internal/obs"
)

// TopPairs returns the n most similar column pairs without requiring
// the caller to guess a threshold: it runs the configured algorithm at
// cfg.Threshold and, when fewer than n pairs clear it, geometrically
// lowers the threshold and re-queries until n pairs are found or the
// floor is hit. cfg.Threshold acts as the starting point (default 0.9);
// minThreshold bounds the search from below (default 0.05 — below
// that, the near-zero mass makes "top pairs" meaningless on sparse
// data).
//
// With a precomputed-signature-friendly algorithm (MinHash, MinLSH)
// each retry reuses nothing but is still cheap; pair the call with
// ComputeSignatures/SimilarPairsWithSignatures when the dataset is
// large and the threshold is expected to drop several times.
// cfg.Workers carries through to every retry, parallelising all three
// phases of each attempt.
func TopPairs(d *Dataset, n int, cfg Config, minThreshold float64) ([]Pair, error) {
	return topLoop(n, cfg, minThreshold, func(c Config) (*Result, error) {
		return SimilarPairs(d, c)
	}, nil)
}

// TopPairsWithSignatures is TopPairs answered from a resident min-hash
// sketch: every threshold-lowering retry reruns only the in-memory
// candidate phase plus one verification pass, never the signature
// scan. cfg.Algorithm must be MinHash or MinLSH (the schemes
// SimilarPairsWithSignatures supports).
func TopPairsWithSignatures(d *Dataset, s *Signatures, n int, cfg Config, minThreshold float64) ([]Pair, error) {
	return topLoop(n, cfg, minThreshold, func(c Config) (*Result, error) {
		return SimilarPairsWithSignatures(d, s, c)
	}, nil)
}

// TopPairsWithSketches is TopPairs answered from a resident bottom-k
// sketch via SimilarPairsWithSketches (cfg.Algorithm is forced to
// KMinHash).
func TopPairsWithSketches(d *Dataset, s *Sketches, n int, cfg Config, minThreshold float64) ([]Pair, error) {
	return topLoop(n, cfg, minThreshold, func(c Config) (*Result, error) {
		return SimilarPairsWithSketches(d, s, c)
	}, nil)
}

// TopColumnsWithSignatures returns the n columns most similar to col,
// as pairs containing col, answered from a resident min-hash sketch
// with the same threshold-lowering search as TopPairs. Pairs are
// ordered by decreasing verified similarity.
func TopColumnsWithSignatures(d *Dataset, s *Signatures, col, n int, cfg Config, minThreshold float64) ([]Pair, error) {
	if col < 0 || col >= d.NumCols() {
		return nil, fmt.Errorf("assocmine: column %d out of range [0,%d)", col, d.NumCols())
	}
	return topLoop(n, cfg, minThreshold, func(c Config) (*Result, error) {
		return SimilarPairsWithSignatures(d, s, c)
	}, func(p Pair) bool { return p.I == col || p.J == col })
}

// TopColumnsWithSketches is TopColumnsWithSignatures over a resident
// bottom-k sketch (cfg.Algorithm is forced to KMinHash).
func TopColumnsWithSketches(d *Dataset, s *Sketches, col, n int, cfg Config, minThreshold float64) ([]Pair, error) {
	if col < 0 || col >= d.NumCols() {
		return nil, fmt.Errorf("assocmine: column %d out of range [0,%d)", col, d.NumCols())
	}
	return topLoop(n, cfg, minThreshold, func(c Config) (*Result, error) {
		return SimilarPairsWithSketches(d, s, c)
	}, func(p Pair) bool { return p.I == col || p.J == col })
}

// topLoop is the shared threshold-lowering search: query at
// cfg.Threshold, keep the pairs passing keep (nil keeps all), and
// geometrically lower the threshold until n pairs are found or
// minThreshold is hit. Validation and retry accounting are identical
// for every TopPairs/TopColumns variant.
func topLoop(n int, cfg Config, minThreshold float64, query func(Config) (*Result, error), keep func(Pair) bool) ([]Pair, error) {
	if n <= 0 {
		return nil, fmt.Errorf("assocmine: TopPairs needs n > 0, got %d", n)
	}
	if minThreshold == 0 {
		minThreshold = 0.05
	}
	if minThreshold < 0 || minThreshold > 1 {
		return nil, fmt.Errorf("assocmine: minThreshold must be in (0,1], got %v", minThreshold)
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.9
	}
	if cfg.Threshold < minThreshold {
		return nil, fmt.Errorf("assocmine: starting threshold %v below floor %v", cfg.Threshold, minThreshold)
	}
	rec := obs.OrNop(cfg.Recorder)
	for {
		rec.Add(obs.CounterTopPairsAttempts, 1)
		res, err := query(cfg)
		if err != nil {
			return nil, err
		}
		kept := res.Pairs
		if keep != nil {
			kept = make([]Pair, 0, len(res.Pairs))
			for _, p := range res.Pairs {
				if keep(p) {
					kept = append(kept, p)
				}
			}
		}
		if len(kept) >= n {
			return kept[:n], nil
		}
		if cfg.Threshold <= minThreshold {
			// Floor reached: return everything found.
			return kept, nil
		}
		cfg.Threshold *= 0.7
		if cfg.Threshold < minThreshold {
			cfg.Threshold = minThreshold
		}
	}
}
