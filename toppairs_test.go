package assocmine

import "testing"

func TestTopPairsReturnsExactlyN(t *testing.T) {
	d, _ := plantedDataset(t)
	for _, n := range []int{1, 5, 15} {
		got, err := TopPairs(d, n, Config{Algorithm: BruteForce}, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d pairs", n, len(got))
		}
		// Sorted by decreasing similarity.
		for i := 1; i < len(got); i++ {
			if got[i].Similarity > got[i-1].Similarity {
				t.Fatalf("n=%d: not sorted", n)
			}
		}
	}
}

func TestTopPairsMatchesGroundTruthOrder(t *testing.T) {
	d, _ := plantedDataset(t)
	top, err := TopPairs(d, 3, Config{Algorithm: BruteForce}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// The top pair must be a maximum-similarity pair overall (checked
	// against a low-threshold brute-force sweep).
	all, err := SimilarPairs(d, Config{Algorithm: BruteForce, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Pairs) == 0 {
		t.Fatal("no pairs at floor")
	}
	if top[0].Similarity != all.Pairs[0].Similarity {
		t.Errorf("top pair sim %v, global max %v", top[0].Similarity, all.Pairs[0].Similarity)
	}
}

func TestTopPairsFloorReturnsWhatExists(t *testing.T) {
	// Only one pair exists at all.
	d, err := NewDatasetFromColumns(6, [][]int{
		{0, 1, 2}, {0, 1, 2}, {3}, {4},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := TopPairs(d, 10, Config{Algorithm: BruteForce}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d pairs, want the 1 that exists", len(got))
	}
}

func TestTopPairsValidation(t *testing.T) {
	d, _ := NewDatasetFromRows(2, [][]int{{0}, {1}})
	if _, err := TopPairs(d, 0, Config{Algorithm: BruteForce}, 0.1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := TopPairs(d, 1, Config{Algorithm: BruteForce}, 1.5); err == nil {
		t.Error("bad floor accepted")
	}
	if _, err := TopPairs(d, 1, Config{Algorithm: BruteForce, Threshold: 0.01}, 0.5); err == nil {
		t.Error("threshold below floor accepted")
	}
}

func TestTopPairsWithLSH(t *testing.T) {
	d, _ := plantedDataset(t)
	got, err := TopPairs(d, 5, Config{Algorithm: MinLSH, K: 100, R: 4, L: 25, Seed: 3}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d pairs", len(got))
	}
	for _, p := range got {
		if p.Similarity < 0.2 {
			t.Errorf("pair %+v below floor", p)
		}
	}
}
