package assocmine

import "testing"

// TestWorkersBitIdentical: parallel signature computation must yield
// exactly the serial results through the public API.
func TestWorkersBitIdentical(t *testing.T) {
	d, _ := plantedDataset(t)
	for _, algo := range []Algorithm{MinHash, KMinHash, MinLSH} {
		base := Config{Algorithm: algo, Threshold: 0.6, K: 60, Seed: 4}
		if algo == MinLSH {
			base.R, base.L = 3, 20
		}
		serial, err := SimilarPairs(d, base)
		if err != nil {
			t.Fatalf("%v serial: %v", algo, err)
		}
		for _, workers := range []int{2, 8, -1} {
			cfg := base
			cfg.Workers = workers
			par, err := SimilarPairs(d, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", algo, workers, err)
			}
			if len(par.Pairs) != len(serial.Pairs) {
				t.Fatalf("%v workers=%d: %d pairs vs %d serial",
					algo, workers, len(par.Pairs), len(serial.Pairs))
			}
			for i := range serial.Pairs {
				if par.Pairs[i] != serial.Pairs[i] {
					t.Fatalf("%v workers=%d: pair %d differs", algo, workers, i)
				}
			}
		}
	}
}

// TestWorkersOnFileDataset: setting Workers on a streaming dataset
// materialises and still matches.
func TestWorkersOnFileDataset(t *testing.T) {
	d, fd := fileDatasetFixture(t, ".arows")
	cfg := Config{Algorithm: MinHash, Threshold: 0.45, K: 40, Seed: 9}
	serial, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := fd.SimilarPairs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Pairs) != len(serial.Pairs) {
		t.Fatalf("parallel file run found %d pairs, want %d", len(par.Pairs), len(serial.Pairs))
	}
}
