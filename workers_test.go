package assocmine

import (
	"fmt"
	"testing"
)

// TestWorkersDeterminismTable: SimilarPairs output (pairs, estimates,
// similarities, candidate and verified counts) must be identical for
// every worker count, across all LSH-family algorithms. workers=1 is
// the serial baseline; the others exercise the parallel shards of all
// three phases. DataPasses is deliberately not compared: on in-memory
// datasets the parallel phases materialise or scan concurrently instead
// of scanning the counted stream, so pass accounting legitimately
// differs (streamed FileDataset runs always pay one pass per phase —
// see streamdiff_test.go).
func TestWorkersDeterminismTable(t *testing.T) {
	d, _ := plantedDataset(t)
	algos := []struct {
		name string
		cfg  Config
	}{
		{"MinHash", Config{Algorithm: MinHash, Threshold: 0.6, K: 60, Seed: 4}},
		{"KMinHash", Config{Algorithm: KMinHash, Threshold: 0.6, K: 60, Seed: 4}},
		{"MinLSH", Config{Algorithm: MinLSH, Threshold: 0.6, K: 60, R: 3, L: 20, Seed: 4}},
		{"HammingLSH", Config{Algorithm: HammingLSH, Threshold: 0.6, K: 60, Seed: 4}},
	}
	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			base := a.cfg
			base.Workers = 1
			serial, err := SimilarPairs(d, base)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			for _, workers := range []int{2, 4, 7} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					cfg := a.cfg
					cfg.Workers = workers
					par, err := SimilarPairs(d, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if par.Stats.Candidates != serial.Stats.Candidates {
						t.Errorf("candidates %d, want %d", par.Stats.Candidates, serial.Stats.Candidates)
					}
					if par.Stats.Verified != serial.Stats.Verified {
						t.Errorf("verified %d, want %d", par.Stats.Verified, serial.Stats.Verified)
					}
					if len(par.Pairs) != len(serial.Pairs) {
						t.Fatalf("%d pairs, want %d", len(par.Pairs), len(serial.Pairs))
					}
					for i := range serial.Pairs {
						if par.Pairs[i] != serial.Pairs[i] {
							t.Fatalf("pair %d: %+v, want %+v", i, par.Pairs[i], serial.Pairs[i])
						}
					}
				})
			}
		})
	}
}

// TestWorkersBitIdentical: parallel signature computation must yield
// exactly the serial results through the public API.
func TestWorkersBitIdentical(t *testing.T) {
	d, _ := plantedDataset(t)
	for _, algo := range []Algorithm{MinHash, KMinHash, MinLSH} {
		base := Config{Algorithm: algo, Threshold: 0.6, K: 60, Seed: 4}
		if algo == MinLSH {
			base.R, base.L = 3, 20
		}
		serial, err := SimilarPairs(d, base)
		if err != nil {
			t.Fatalf("%v serial: %v", algo, err)
		}
		for _, workers := range []int{2, 8, -1} {
			cfg := base
			cfg.Workers = workers
			par, err := SimilarPairs(d, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", algo, workers, err)
			}
			if len(par.Pairs) != len(serial.Pairs) {
				t.Fatalf("%v workers=%d: %d pairs vs %d serial",
					algo, workers, len(par.Pairs), len(serial.Pairs))
			}
			for i := range serial.Pairs {
				if par.Pairs[i] != serial.Pairs[i] {
					t.Fatalf("%v workers=%d: pair %d differs", algo, workers, i)
				}
			}
		}
	}
}

// TestWorkersOnFileDataset: setting Workers on a streaming dataset
// fans the sequential file pass out to the workers (no materialising)
// and still matches the serial in-memory run.
func TestWorkersOnFileDataset(t *testing.T) {
	d, fd := fileDatasetFixture(t, ".arows")
	cfg := Config{Algorithm: MinHash, Threshold: 0.45, K: 40, Seed: 9}
	serial, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := fd.SimilarPairs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Pairs) != len(serial.Pairs) {
		t.Fatalf("parallel file run found %d pairs, want %d", len(par.Pairs), len(serial.Pairs))
	}
}
